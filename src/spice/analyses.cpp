#include "spice/analyses.h"

#include <algorithm>
#include <cmath>

#include "phys/linalg.h"
#include "phys/require.h"

namespace carbon::spice {

void NewtonWorkspace::prepare(Circuit& ckt, const SolverOptions& opts) {
  mna.build(ckt, opts.backend, opts.sparse_threshold);
  x_new.resize(mna.size());
}

/// One full Newton–Raphson solve at fixed gmin / source scale, on a
/// caller-provided workspace.  The loop body is allocation-free: every
/// element stamps through its pre-resolved slot table, the LU refactors on
/// the recorded pattern (sparse) or into its existing storage (dense), and
/// the solve happens in the x_new buffer.
bool newton_solve(Circuit& ckt, std::vector<double>& x,
                  const SolverOptions& opts, double gmin, double source_scale,
                  const StampContext& proto, NewtonWorkspace& ws,
                  int* iterations) {
  const int n = ckt.num_unknowns();
  ws.prepare(ckt, opts);

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ws.mna.zero();

    StampContext ctx = proto;
    ctx.x = &x;
    ctx.gmin = gmin;
    ctx.source_scale = source_scale;
    ws.mna.stamp_all(ckt, ctx);

    if (!ws.mna.factor()) {
      return false;  // singular at this homotopy rung
    }
    ws.mna.copy_rhs(ws.x_new);
    ws.mna.solve_in_place(ws.x_new);

    // Damped update: limit node-voltage movement per iteration.
    double max_dv = 0.0;
    const int n_nodes = ckt.num_nodes();
    for (int i = 0; i < n_nodes; ++i) {
      max_dv = std::max(max_dv, std::abs(ws.x_new[i] - x[i]));
    }
    double damp = 1.0;
    if (max_dv > opts.v_step_limit) damp = opts.v_step_limit / max_dv;

    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
      const double xi = x[i] + damp * (ws.x_new[i] - x[i]);
      const double tol = opts.v_abstol + opts.reltol * std::abs(xi);
      worst = std::max(worst, std::abs(xi - x[i]) / tol);
      x[i] = xi;
    }
    if (iterations) *iterations = iter + 1;
    if (worst < 1.0 && damp == 1.0) return true;
  }
  return false;
}

Solution operating_point(Circuit& ckt, const SolverOptions& opts,
                         const std::vector<double>* x0, NewtonWorkspace* ws) {
  ckt.assign_branches();
  const int n = ckt.num_unknowns();
  CARBON_REQUIRE(n > 0, "empty circuit");

  NewtonWorkspace local_ws;
  NewtonWorkspace& w = ws ? *ws : local_ws;

  Solution sol;
  sol.x.assign(n, 0.0);
  if (x0 && static_cast<int>(x0->size()) == n) sol.x = *x0;

  StampContext proto;  // DC: transient=false
  int iters = 0;

  // 1) Plain Newton from the initial point.
  std::vector<double> x = sol.x;
  if (newton_solve(ckt, x, opts, opts.gmin_final, 1.0, proto, w, &iters)) {
    sol.x = std::move(x);
    sol.iterations = iters;
    return sol;
  }

  // 2) Gmin stepping: start heavily shunted, relax geometrically.
  x = sol.x;
  bool ok = true;
  const double ratio = std::pow(opts.gmin_final / opts.gmin_initial,
                                1.0 / std::max(1, opts.gmin_steps - 1));
  double gmin = opts.gmin_initial;
  for (int s = 0; s < opts.gmin_steps; ++s) {
    if (!newton_solve(ckt, x, opts, gmin, 1.0, proto, w, &iters)) {
      ok = false;
      break;
    }
    gmin *= ratio;
  }
  if (ok &&
      newton_solve(ckt, x, opts, opts.gmin_final, 1.0, proto, w, &iters)) {
    sol.x = std::move(x);
    sol.iterations = iters;
    sol.used_gmin_stepping = true;
    return sol;
  }

  // 3) Source stepping from zero bias.
  x.assign(n, 0.0);
  ok = true;
  for (int s = 1; s <= opts.source_steps; ++s) {
    const double scale = static_cast<double>(s) / opts.source_steps;
    if (!newton_solve(ckt, x, opts, opts.gmin_final, scale, proto, w,
                      &iters)) {
      ok = false;
      break;
    }
  }
  if (ok) {
    sol.x = std::move(x);
    sol.iterations = iters;
    sol.used_source_stepping = true;
    return sol;
  }

  throw phys::ConvergenceError(
      "operating_point: Newton, gmin stepping and source stepping all "
      "failed");
}

double node_voltage(const Circuit& ckt, const Solution& sol,
                    const std::string& node_name) {
  const NodeId id = ckt.find_node(node_name);
  if (id == 0) return 0.0;
  return sol.x[id - 1];
}

double vsource_current(const Circuit& ckt, const Solution& sol,
                       const VSource& src) {
  const int row = ckt.vsource_branch_index(src);
  return sol.x[row - 1];
}

std::vector<NodeId> resolve_probes(const Circuit& ckt,
                                   const std::vector<std::string>& probes) {
  std::vector<NodeId> ids;
  ids.reserve(probes.size());
  for (const auto& p : probes) ids.push_back(ckt.find_node(p));
  return ids;
}

phys::DataTable dc_sweep(Circuit& ckt, VSource& swept,
                         const std::vector<double>& values,
                         const std::vector<std::string>& probes,
                         const SolverOptions& opts) {
  CARBON_REQUIRE(!values.empty(), "empty sweep");
  CARBON_REQUIRE(!probes.empty(), "no probe nodes");
  std::vector<std::string> cols{"sweep_v"};
  for (const auto& p : probes) cols.push_back("v(" + p + ")");
  phys::DataTable table(cols);

  // Probe names resolve to node ids once, not once per point.
  const std::vector<NodeId> probe_ids = resolve_probes(ckt, probes);

  // One workspace for the whole sweep: the matrix pattern, slot tables and
  // LU buffers persist across points, and each point warm-starts from the
  // previous solution.
  NewtonWorkspace ws;
  std::vector<double> warm;
  for (double v : values) {
    swept.set_wave(dc(v));
    const Solution sol =
        operating_point(ckt, opts, warm.empty() ? nullptr : &warm, &ws);
    warm = sol.x;
    std::vector<double> row{v};
    for (const NodeId id : probe_ids) {
      row.push_back(id == 0 ? 0.0 : sol.x[id - 1]);
    }
    table.add_row(row);
  }
  return table;
}

phys::DataTable transient(Circuit& ckt, const TransientOptions& opts,
                          const std::vector<std::string>& probes,
                          const std::vector<const VSource*>& current_probes) {
  CARBON_REQUIRE(opts.t_stop > 0.0 && opts.dt > 0.0,
                 "transient needs positive t_stop and dt");
  CARBON_REQUIRE(!probes.empty(), "no probe nodes");

  std::vector<std::string> cols{"time_s"};
  for (const auto& p : probes) cols.push_back("v(" + p + ")");
  for (const auto* src : current_probes) cols.push_back("i(" + src->name() + ")");
  phys::DataTable table(cols);

  ckt.reset_state();
  ckt.assign_branches();

  // Workspace shared by the initial OP and every time step.
  NewtonWorkspace ws;

  // Initial condition: DC operating point with sources at t=0.
  Solution sol = operating_point(ckt, opts.solver, nullptr, &ws);
  std::vector<double> x = sol.x;
  std::vector<double> x_try;

  // Resolve probe nodes and source branch rows once; the record loop runs
  // every accepted time step.
  const std::vector<NodeId> probe_ids = resolve_probes(ckt, probes);
  std::vector<int> branch_rows;
  branch_rows.reserve(current_probes.size());
  for (const auto* src : current_probes) {
    branch_rows.push_back(ckt.vsource_branch_index(*src));
  }

  const auto record = [&](double t) {
    std::vector<double> row{t};
    for (const NodeId id : probe_ids) {
      row.push_back(id == 0 ? 0.0 : x[id - 1]);
    }
    for (const int br : branch_rows) row.push_back(x[br - 1]);
    table.add_row(row);
  };
  record(0.0);

  double t = 0.0;
  bool first_step = true;  // BE start-up step stabilizes trap ringing
  while (t < opts.t_stop - 1e-21) {
    double dt = std::min(opts.dt, opts.t_stop - t);
    int halvings = 0;
    for (;;) {
      StampContext proto;
      proto.transient = true;
      proto.dt_s = dt;
      proto.trapezoidal = opts.trapezoidal && !first_step;
      proto.time_s = t + dt;

      x_try = x;
      int iters = 0;
      if (newton_solve(ckt, x_try, opts.solver, opts.solver.gmin_final, 1.0,
                       proto, ws, &iters)) {
        // Accept: update element state with the converged voltages.
        StampContext accept_ctx = proto;
        accept_ctx.x = &x_try;
        for (const auto& el : ckt.elements()) el->accept_step(accept_ctx);
        std::swap(x, x_try);
        t += dt;
        first_step = false;
        record(t);
        break;
      }
      ++halvings;
      CARBON_REQUIRE(halvings <= opts.max_step_halvings,
                     "transient: step size collapsed without convergence");
      dt *= 0.5;
    }
  }
  return table;
}

}  // namespace carbon::spice
