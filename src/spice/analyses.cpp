#include "spice/analyses.h"

#include <algorithm>
#include <cmath>

#include "phys/linalg.h"
#include "phys/require.h"
#include "spice/integrator.h"

namespace carbon::spice {

void NewtonWorkspace::prepare(Circuit& ckt, const SolverOptions& opts) {
  mna.build(ckt, opts.backend, opts.sparse_threshold);
  x_new.resize(mna.size());
}

/// One full Newton–Raphson solve at fixed gmin / source scale, on a
/// caller-provided workspace.  The loop body is allocation-free: every
/// element stamps through its pre-resolved slot table, the LU refactors on
/// the recorded pattern (sparse) or into its existing storage (dense), and
/// the solve happens in the x_new buffer.
bool newton_solve(Circuit& ckt, std::vector<double>& x,
                  const SolverOptions& opts, double gmin, double source_scale,
                  const StampContext& proto, NewtonWorkspace& ws,
                  int* iterations) {
  const int n = ckt.num_unknowns();
  ws.prepare(ckt, opts);

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ws.mna.restore_baseline();

    StampContext ctx = proto;
    ctx.x = &x;
    ctx.gmin = gmin;
    ctx.source_scale = source_scale;
    ws.mna.stamp_all(ckt, ctx);

    if (!ws.mna.factor()) {
      return false;  // singular at this homotopy rung
    }
    ws.mna.copy_rhs(ws.x_new);
    ws.mna.solve_in_place(ws.x_new);

    // Damped update: limit node-voltage movement per iteration.
    double max_dv = 0.0;
    const int n_nodes = ckt.num_nodes();
    for (int i = 0; i < n_nodes; ++i) {
      max_dv = std::max(max_dv, std::abs(ws.x_new[i] - x[i]));
    }
    double damp = 1.0;
    if (max_dv > opts.v_step_limit) damp = opts.v_step_limit / max_dv;

    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
      const double xi = x[i] + damp * (ws.x_new[i] - x[i]);
      const double tol = opts.v_abstol + opts.reltol * std::abs(xi);
      worst = std::max(worst, std::abs(xi - x[i]) / tol);
      x[i] = xi;
    }
    if (iterations) *iterations = iter + 1;
    if (worst < 1.0 && damp == 1.0) return true;
  }
  return false;
}

Solution operating_point(Circuit& ckt, const SolverOptions& opts,
                         const std::vector<double>* x0, NewtonWorkspace* ws) {
  ckt.assign_branches();
  const int n = ckt.num_unknowns();
  CARBON_REQUIRE(n > 0, "empty circuit");

  NewtonWorkspace local_ws;
  NewtonWorkspace& w = ws ? *ws : local_ws;

  Solution sol;
  sol.x.assign(n, 0.0);
  if (x0 && static_cast<int>(x0->size()) == n) sol.x = *x0;

  StampContext proto;  // DC: transient=false
  int iters = 0;

  // 1) Plain Newton from the initial point.
  std::vector<double> x = sol.x;
  if (newton_solve(ckt, x, opts, opts.gmin_final, 1.0, proto, w, &iters)) {
    sol.x = std::move(x);
    sol.iterations = iters;
    return sol;
  }

  // 2) Gmin stepping: start heavily shunted, relax geometrically.
  x = sol.x;
  bool ok = true;
  const double ratio = std::pow(opts.gmin_final / opts.gmin_initial,
                                1.0 / std::max(1, opts.gmin_steps - 1));
  double gmin = opts.gmin_initial;
  for (int s = 0; s < opts.gmin_steps; ++s) {
    if (!newton_solve(ckt, x, opts, gmin, 1.0, proto, w, &iters)) {
      ok = false;
      break;
    }
    gmin *= ratio;
  }
  if (ok &&
      newton_solve(ckt, x, opts, opts.gmin_final, 1.0, proto, w, &iters)) {
    sol.x = std::move(x);
    sol.iterations = iters;
    sol.used_gmin_stepping = true;
    return sol;
  }

  // 3) Source stepping from zero bias.
  x.assign(n, 0.0);
  ok = true;
  for (int s = 1; s <= opts.source_steps; ++s) {
    const double scale = static_cast<double>(s) / opts.source_steps;
    if (!newton_solve(ckt, x, opts, opts.gmin_final, scale, proto, w,
                      &iters)) {
      ok = false;
      break;
    }
  }
  if (ok) {
    sol.x = std::move(x);
    sol.iterations = iters;
    sol.used_source_stepping = true;
    return sol;
  }

  throw phys::ConvergenceError(
      "operating_point: Newton, gmin stepping and source stepping all "
      "failed");
}

double node_voltage(const Circuit& ckt, const Solution& sol,
                    const std::string& node_name) {
  const NodeId id = ckt.find_node(node_name);
  if (id == 0) return 0.0;
  return sol.x[id - 1];
}

double vsource_current(const Circuit& ckt, const Solution& sol,
                       const VSource& src) {
  const int row = ckt.vsource_branch_index(src);
  return sol.x[row - 1];
}

std::vector<NodeId> resolve_probes(const Circuit& ckt,
                                   const std::vector<std::string>& probes) {
  std::vector<NodeId> ids;
  ids.reserve(probes.size());
  for (const auto& p : probes) ids.push_back(ckt.find_node(p));
  return ids;
}

phys::DataTable dc_sweep(Circuit& ckt, VSource& swept,
                         const std::vector<double>& values,
                         const std::vector<std::string>& probes,
                         const SolverOptions& opts) {
  CARBON_REQUIRE(!values.empty(), "empty sweep");
  CARBON_REQUIRE(!probes.empty(), "no probe nodes");
  std::vector<std::string> cols{"sweep_v"};
  for (const auto& p : probes) cols.push_back("v(" + p + ")");
  phys::DataTable table(cols);

  // Probe names resolve to node ids once, not once per point.
  const std::vector<NodeId> probe_ids = resolve_probes(ckt, probes);

  // One workspace for the whole sweep: the matrix pattern, slot tables and
  // LU buffers persist across points, and each point warm-starts from the
  // previous solution.
  NewtonWorkspace ws;
  std::vector<double> warm;
  for (double v : values) {
    swept.set_wave(dc(v));
    const Solution sol =
        operating_point(ckt, opts, warm.empty() ? nullptr : &warm, &ws);
    warm = sol.x;
    std::vector<double> row{v};
    for (const NodeId id : probe_ids) {
      row.push_back(id == 0 ? 0.0 : sol.x[id - 1]);
    }
    table.add_row(row);
  }
  return table;
}

namespace {

/// Row recorder shared by the fixed and adaptive transient paths: either
/// one row per accepted step (dt_print = 0), or rows thinned onto a
/// uniform dt_print grid interpolated between accepted steps — adaptive
/// runs then don't explode the DataTable, and runs with different stepping
/// land on a common grid for RMS comparison.  Interior samples use a
/// quadratic through the last three accepted points when one is available:
/// adaptive steps can span many print intervals, and linear interpolation
/// over such a span would add an O(h^2 x'') waveform error far above the
/// LTE the controller worked to bound.
class TransientRecorder {
 public:
  TransientRecorder(phys::DataTable& table, std::vector<NodeId> probe_ids,
                    std::vector<int> branch_rows, double dt_print)
      : table_(table), probe_ids_(std::move(probe_ids)),
        branch_rows_(std::move(branch_rows)), dt_print_(dt_print) {}

  void initial(const std::vector<double>& x) {
    emit_point(0.0, x);
    next_print_ = dt_print_;
  }

  void accepted(double t_old, const std::vector<double>& x_old, double t_new,
                const std::vector<double>& x_new) {
    if (dt_print_ <= 0.0) {
      emit_point(t_new, x_new);
      return;
    }
    const double eps = 1e-9 * dt_print_;
    while (next_print_ <= t_new + eps) {
      emit_interp(std::min(next_print_, t_new), t_old, x_old, t_new, x_new);
      next_print_ += dt_print_;
    }
    // Slide the 3-point window.
    t_m1_ = t_old;
    x_m1_ = x_old;
    have_m1_ = true;
  }

  /// The integrator landed on a waveform corner: the solution is only C0
  /// there, so drop the pre-corner history point instead of letting the
  /// quadratic smear the kink.
  void discontinuity() { have_m1_ = false; }

  /// Make sure the run ends with an exact row at t_end (thinned mode only;
  /// per-step mode already recorded it).
  void finish(double t_end, const std::vector<double>& x_end) {
    if (dt_print_ <= 0.0) return;
    if (last_t_ < t_end - 1e-9 * dt_print_) emit_point(t_end, x_end);
  }

 private:
  void emit_point(double t, const std::vector<double>& x) {
    row_.clear();
    row_.push_back(t);
    for (const NodeId id : probe_ids_) {
      row_.push_back(id == 0 ? 0.0 : x[id - 1]);
    }
    for (const int br : branch_rows_) row_.push_back(x[br - 1]);
    table_.add_row(row_);
    last_t_ = t;
  }

  void emit_interp(double t, double t0, const std::vector<double>& x0,
                   double t1, const std::vector<double>& x1) {
    // Lagrange weights for (t_m1, t0, t1) -> t; linear fallback without a
    // third point.
    double wm = 0.0, w0, w1;
    if (have_m1_ && t_m1_ < t0) {
      wm = (t - t0) * (t - t1) / ((t_m1_ - t0) * (t_m1_ - t1));
      w0 = (t - t_m1_) * (t - t1) / ((t0 - t_m1_) * (t0 - t1));
      w1 = (t - t_m1_) * (t - t0) / ((t1 - t_m1_) * (t1 - t0));
    } else {
      const double f = std::clamp((t - t0) / (t1 - t0), 0.0, 1.0);
      w0 = 1.0 - f;
      w1 = f;
    }
    row_.clear();
    row_.push_back(t);
    const auto interp = [&](int idx) {
      const double quad = wm == 0.0 ? 0.0 : wm * x_m1_[idx];
      return quad + w0 * x0[idx] + w1 * x1[idx];
    };
    for (const NodeId id : probe_ids_) {
      row_.push_back(id == 0 ? 0.0 : interp(id - 1));
    }
    for (const int br : branch_rows_) row_.push_back(interp(br - 1));
    table_.add_row(row_);
    last_t_ = t;
  }

  phys::DataTable& table_;
  std::vector<NodeId> probe_ids_;
  std::vector<int> branch_rows_;
  double dt_print_ = 0.0;
  double next_print_ = 0.0;
  double last_t_ = -1.0;
  double t_m1_ = 0.0;
  std::vector<double> x_m1_;
  bool have_m1_ = false;
  std::vector<double> row_;
};

void note_accepted_step(TransientStats& st, double h) {
  ++st.steps_accepted;
  st.dt_smallest =
      st.dt_smallest == 0.0 ? h : std::min(st.dt_smallest, h);
  st.dt_largest = std::max(st.dt_largest, h);
}

}  // namespace

phys::DataTable transient(Circuit& ckt, const TransientOptions& opts,
                          const std::vector<std::string>& probes,
                          const std::vector<const VSource*>& current_probes) {
  CARBON_REQUIRE(opts.t_stop > 0.0 && opts.dt > 0.0,
                 "transient needs positive t_stop and dt");
  CARBON_REQUIRE(!probes.empty(), "no probe nodes");

  std::vector<std::string> cols{"time_s"};
  for (const auto& p : probes) cols.push_back("v(" + p + ")");
  for (const auto* src : current_probes) cols.push_back("i(" + src->name() + ")");
  phys::DataTable table(cols);

  ckt.reset_state();
  ckt.assign_branches();

  // Workspace shared by the initial OP and every time step.
  NewtonWorkspace ws;

  // Initial condition: DC operating point with sources at t=0.
  Solution sol = operating_point(ckt, opts.solver, nullptr, &ws);
  std::vector<double> x = sol.x;
  std::vector<double> x_try, x_pred;

  // Resolve probe nodes and source branch rows once; the record loop runs
  // every accepted time step.
  const std::vector<NodeId> probe_ids = resolve_probes(ckt, probes);
  std::vector<int> branch_rows;
  branch_rows.reserve(current_probes.size());
  for (const auto* src : current_probes) {
    branch_rows.push_back(ckt.vsource_branch_index(*src));
  }

  if (opts.ic == TransientIc::kFromOperatingPoint) {
    StampContext ic_ctx;
    ic_ctx.x = &x;
    for (const auto& el : ckt.elements()) el->set_transient_ic(ic_ctx);
  }

  TransientStats local_stats;
  TransientStats& st = opts.stats ? *opts.stats : local_stats;
  st = TransientStats{};

  TransientRecorder rec(table, probe_ids, branch_rows, opts.dt_print);
  rec.initial(x);

  // Stamp-context prototype shared by every step of either path.
  StampContext proto_base;
  proto_base.transient = true;
  proto_base.bypass_vtol = opts.bypass_vtol;
  proto_base.counters = &st.evals;

  double t = 0.0;

  if (!opts.adaptive) {
    // ---- fixed-step path: the classic dt grid with halving-on-failure,
    // kept as the bit-stable reference the adaptive engine is verified
    // against.
    bool first_step = true;  // BE start-up step stabilizes trap ringing
    while (t < opts.t_stop - 1e-21) {
      double dt = std::min(opts.dt, opts.t_stop - t);
      int halvings = 0;
      for (;;) {
        StampContext proto = proto_base;
        proto.dt_s = dt;
        proto.trapezoidal = opts.trapezoidal && !first_step;
        proto.time_s = t + dt;

        x_try = x;
        int iters = 0;
        if (newton_solve(ckt, x_try, opts.solver, opts.solver.gmin_final,
                         1.0, proto, ws, &iters)) {
          st.newton_iterations += iters;
          // Accept: update element state with the converged voltages.
          StampContext accept_ctx = proto;
          accept_ctx.x = &x_try;
          for (const auto& el : ckt.elements()) el->accept_step(accept_ctx);
          rec.accepted(t, x, t + dt, x_try);
          std::swap(x, x_try);
          t += dt;
          first_step = false;
          note_accepted_step(st, dt);
          break;
        }
        st.newton_iterations += iters;
        ++st.steps_rejected_newton;
        ++halvings;
        CARBON_REQUIRE(halvings <= opts.max_step_halvings,
                       "transient: step size collapsed without convergence");
        dt *= 0.5;
      }
    }
    rec.finish(t, x);
    st.jacobian_reuses = ws.mna.factor_skip_count();
    return table;
  }

  // ---- adaptive path: LTE-controlled variable steps on a trapezoidal
  // corrector (BE at start-up and after breakpoints), with the polynomial
  // predictor doubling as the Newton warm start.
  LteControlConfig cfg;
  cfg.reltol = opts.lte_reltol;
  cfg.abstol = opts.lte_abstol;
  cfg.trtol = opts.trtol;
  cfg.dt_max = opts.dt_max > 0.0 ? opts.dt_max : opts.t_stop / 50.0;
  cfg.dt_min = opts.dt_min > 0.0
                   ? opts.dt_min
                   : std::max(opts.t_stop * 1e-12, opts.dt * 1e-6);
  cfg.dt_min = std::min(cfg.dt_min, cfg.dt_max);
  cfg.pi = opts.lte_pi;
  LteController ctl(cfg);
  PredictorHistory hist;

  const std::vector<double> bps = ckt.collect_breakpoints(opts.t_stop);
  size_t bp_idx = 0;

  const double t_eps = 1e-12 * opts.t_stop;
  double dt = std::clamp(opts.dt, cfg.dt_min, cfg.dt_max);
  int consecutive_failures = 0;

  while (t < opts.t_stop - t_eps) {
    // Never step across a source corner: clamp to the next breakpoint (or
    // t_stop) and land on it exactly.
    while (bp_idx < bps.size() && bps[bp_idx] <= t + t_eps) ++bp_idx;
    const double t_limit = bp_idx < bps.size() ? bps[bp_idx] : opts.t_stop;
    double h = dt;
    bool hits_limit = false;
    if (t + h >= t_limit - t_eps) {
      h = t_limit - t;
      hits_limit = true;
    }

    const bool use_trap = opts.trapezoidal && hist.depth() >= 2;

    StampContext proto = proto_base;
    proto.dt_s = h;
    proto.trapezoidal = use_trap;
    proto.time_s = t + h;

    const int pred_order = hist.predict(x, h, x_pred);
    x_try = pred_order > 0 ? x_pred : x;

    int iters = 0;
    const bool converged =
        newton_solve(ckt, x_try, opts.solver, opts.solver.gmin_final, 1.0,
                     proto, ws, &iters);
    st.newton_iterations += iters;
    if (!converged) {
      ++st.steps_rejected_newton;
      ++consecutive_failures;
      CARBON_REQUIRE(consecutive_failures <= opts.max_step_halvings &&
                         h > cfg.dt_min * (1.0 + 1e-12),
                     "transient: adaptive step collapsed without "
                     "convergence");
      dt = std::max(0.25 * h, cfg.dt_min);
      ctl.reset_history();  // the stored PI error belongs to the failed step
      continue;
    }
    consecutive_failures = 0;

    if (pred_order > 0) {
      const double factor = hist.lte_factor(h, use_trap, pred_order);
      const double ratio =
          lte_error_ratio(x_try, x_pred, ckt.num_nodes(), factor, cfg);
      const LteController::Decision dec =
          ctl.step(h, ratio, use_trap && pred_order >= 2 ? 3 : 2);
      if (!dec.accept) {
        ++st.steps_rejected_lte;
        dt = dec.dt_next;
        continue;
      }
      dt = dec.dt_next;
    } else {
      // Start-up / post-breakpoint step has no error estimate: accept but
      // grow only modestly until the predictor is back.
      dt = std::clamp(2.0 * h, cfg.dt_min, cfg.dt_max);
    }

    // Accept: update element state with the converged voltages.
    StampContext accept_ctx = proto;
    accept_ctx.x = &x_try;
    for (const auto& el : ckt.elements()) el->accept_step(accept_ctx);
    const double t_new = hits_limit ? t_limit : t + h;
    rec.accepted(t, x, t_new, x_try);
    hist.advance(x, h);
    std::swap(x, x_try);
    t = t_new;
    note_accepted_step(st, h);

    if (hits_limit && t < opts.t_stop - t_eps) {
      // Landed on a waveform corner: the history on the far side describes
      // a different polynomial, so restart the integrator.  The first step
      // after the restart is a blind BE step (no predictor, no LTE test),
      // so take it at a tenth of the reference dt — its uncontrolled
      // O(h^2) error would otherwise set the accuracy floor of the run.
      ++st.breakpoints_hit;
      hist.reset();
      ctl.reset_history();
      rec.discontinuity();
      dt = std::clamp(0.1 * opts.dt, cfg.dt_min, cfg.dt_max);
    }
  }
  rec.finish(opts.t_stop, x);
  st.jacobian_reuses = ws.mna.factor_skip_count();
  return table;
}

}  // namespace carbon::spice
