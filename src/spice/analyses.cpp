#include "spice/analyses.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/trace.h"
#include "phys/linalg.h"
#include "phys/require.h"
#include "spice/integrator.h"

namespace carbon::spice {

void NewtonWorkspace::prepare(Circuit& ckt, const SolverOptions& opts) {
  mna.build(ckt, opts.backend, opts.sparse_threshold);
  x_new.resize(mna.size());
}

const char* solve_stage_name(SolveStage stage) {
  switch (stage) {
    case SolveStage::kNewton: return "newton";
    case SolveStage::kGminStepping: return "gmin-stepping";
    case SolveStage::kSourceStepping: return "source-stepping";
    case SolveStage::kPseudoTransient: return "pseudo-transient";
  }
  return "unknown";
}

namespace {

const char* cause_name(SolveFailure::Cause cause) {
  switch (cause) {
    case SolveFailure::Cause::kMaxIterations:
      return "Newton ran out of iterations";
    case SolveFailure::Cause::kSingular:
      return "Jacobian is numerically singular";
    case SolveFailure::Cause::kNonFinite:
      return "non-finite value (NaN/Inf) in the system";
    case SolveFailure::Cause::kStalled:
      return "continuation stalled";
  }
  return "unknown";
}

/// Human name of MNA unknown @p row: a node voltage for the first
/// num_nodes rows, a source branch current after.
std::string row_name(const Circuit& ckt, int row) {
  if (row < 0) return {};
  if (row < ckt.num_nodes()) {
    return "node '" + ckt.node_name(row + 1) + "'";
  }
  return "branch current #" + std::to_string(row - ckt.num_nodes());
}

}  // namespace

std::string SolveFailure::to_string() const {
  std::ostringstream os;
  os << "operating point failed at stage '" << solve_stage_name(stage)
     << "': " << cause_name(cause);
  if (!culprit.empty()) os << "; culprit: " << culprit;
  if (!worst_nodes.empty()) {
    os << "; worst nodes:";
    for (const auto& w : worst_nodes) {
      os << " " << w.node << " (" << w.ratio << "x tol)";
    }
  }
  if (!oscillating_nodes.empty()) {
    os << "; oscillating:";
    for (const auto& n : oscillating_nodes) os << " " << n;
  }
  return os.str();
}

SolveFailureError::SolveFailureError(SolveFailure failure)
    : phys::ConvergenceError(failure.to_string()),
      failure_(std::move(failure)) {}

/// One full Newton–Raphson solve at fixed gmin / source scale, on a
/// caller-provided workspace.  The loop body is allocation-free when diag
/// is null: every element stamps through its pre-resolved slot table, the
/// LU refactors on the recorded pattern (sparse) or into its existing
/// storage (dense), and the solve happens in the x_new buffer.  With diag,
/// one extra O(n) pass per iteration tracks update ratios and per-node
/// sign flips for the failure report.
bool newton_solve(Circuit& ckt, std::vector<double>& x,
                  const SolverOptions& opts, double gmin, double source_scale,
                  const StampContext& proto, NewtonWorkspace& ws,
                  int* iterations, NewtonDiag* diag, double ptc_geq,
                  const std::vector<double>* ptc_ref) {
  const int n = ckt.num_unknowns();
  const int n_nodes = ckt.num_nodes();
  try {
    ws.prepare(ckt, opts);
  } catch (const NonFiniteEvalError& e) {
    // The pattern-capture pass evaluates every device once, so a model
    // that returns NaN from its very first eval throws HERE on the worker
    // that builds the pattern — and inside the Newton loop on a worker
    // whose workspace already has it.  Classify both identically (a
    // failed rung for the escalation ladder) so a trial's failure record
    // does not depend on which trials ran earlier on the same workspace.
    if (diag) {
      diag->reason = NewtonDiag::Reason::kNonFinite;
      diag->culprit = e.element();
      diag->iterations = 0;
      diag->bad_row = -1;
      diag->worst_ratio = 0.0;
      diag->update_ratio.clear();
      diag->sign_flips.clear();
    }
    return false;
  }

  std::vector<int> prev_sign;
  if (diag) {
    diag->reason = NewtonDiag::Reason::kMaxIterations;
    diag->iterations = 0;
    diag->bad_row = -1;
    diag->culprit.clear();
    diag->worst_ratio = 0.0;
    diag->update_ratio.assign(n, 0.0);
    diag->sign_flips.assign(n_nodes, 0);
    prev_sign.assign(n_nodes, 0);
  }

  // Observability hooks, hoisted out of the loop: one TLS load for the
  // tracer and one pointer copy for the phase accumulator per solve.  When
  // both are null (the default) the iteration body performs two null
  // checks and zero clock reads.
  obs::Tracer* const tr = obs::tracer();
  obs::PhaseTimes* const ph = opts.phases;
  const bool timing = (ph != nullptr) || (tr != nullptr);
  obs::ScopedSpan solve_span("newton-solve");

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // Cooperative cancellation / deadline poll: one relaxed load (plus a
    // clock read when a deadline is armed) per iteration.  Throws
    // CancelledError, which is not a ConvergenceError — the escalation
    // ladder unwinds instead of treating it as a failed rung.
    if (opts.cancel) opts.cancel->throw_if_stopped("newton");

    long long t_iter0 = 0, t_stamp1 = 0, t_factor1 = 0;
    const long long eval0 = ph ? ph->eval_ns : 0;
    if (timing) t_iter0 = obs::now_ns();

    ws.mna.restore_baseline();

    StampContext ctx = proto;
    ctx.x = &x;
    ctx.gmin = gmin;
    ctx.source_scale = source_scale;
    ctx.phases = ph;
    try {
      ws.mna.stamp_all(ckt, ctx);
    } catch (const NonFiniteEvalError& e) {
      if (diag) {
        diag->reason = NewtonDiag::Reason::kNonFinite;
        diag->culprit = e.element();
        diag->iterations = iter;
      }
      return false;
    }
    if (ptc_geq > 0.0) ws.mna.add_node_shunts(ptc_geq, *ptc_ref);

    if (timing) {
      t_stamp1 = obs::now_ns();
      // stamp_all charged the dynamic elements' model-eval time to
      // eval_ns; the stamp phase is the assembly remainder.
      if (ph) ph->stamp_ns += (t_stamp1 - t_iter0) - (ph->eval_ns - eval0);
      if (tr) tr->span("stamp", t_iter0, t_stamp1 - t_iter0);
    }

    if (!ws.mna.factor()) {
      if (diag) {
        const MnaSystem::FactorFailure& ff = ws.mna.factor_failure();
        diag->reason =
            ff.kind == MnaSystem::FactorFailure::Kind::kNonFinite
                ? NewtonDiag::Reason::kNonFinite
                : NewtonDiag::Reason::kSingular;
        diag->bad_row = ff.row;
        diag->iterations = iter;
      }
      return false;  // singular/non-finite at this homotopy rung
    }
    if (timing) {
      t_factor1 = obs::now_ns();
      if (ph) ph->factor_ns += t_factor1 - t_stamp1;
      if (tr) tr->span("factor", t_stamp1, t_factor1 - t_stamp1);
    }
    ws.mna.copy_rhs(ws.x_new);
    ws.mna.solve_in_place(ws.x_new);
    if (timing) {
      const long long t_solve1 = obs::now_ns();
      if (ph) ph->solve_ns += t_solve1 - t_factor1;
      if (tr) {
        tr->span("solve", t_factor1, t_solve1 - t_factor1);
        tr->span("newton-iter", t_iter0, t_solve1 - t_iter0);
      }
    }

    // A finite factorization can still overflow in the substitution when
    // the pivots sit right at the singularity floor; reject the update
    // rather than poisoning the iterate.
    for (int i = 0; i < n; ++i) {
      if (!std::isfinite(ws.x_new[i])) {
        if (diag) {
          diag->reason = NewtonDiag::Reason::kNonFinite;
          diag->bad_row = i;
          diag->iterations = iter;
        }
        return false;
      }
    }

    // Damped update: limit node-voltage movement per iteration.
    double max_dv = 0.0;
    for (int i = 0; i < n_nodes; ++i) {
      max_dv = std::max(max_dv, std::abs(ws.x_new[i] - x[i]));
    }
    double damp = 1.0;
    if (max_dv > opts.v_step_limit) damp = opts.v_step_limit / max_dv;

    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
      const double xi = x[i] + damp * (ws.x_new[i] - x[i]);
      const double tol = opts.v_abstol + opts.reltol * std::abs(xi);
      const double ratio = std::abs(xi - x[i]) / tol;
      worst = std::max(worst, ratio);
      if (diag) {
        diag->update_ratio[i] = ratio;
        if (i < n_nodes) {
          // Oscillation detector: count update sign reversals per node.
          // A limit-cycling Newton (the metastable-ring signature) flips
          // nearly every iteration; a healthy solve almost never does.
          const double d = ws.x_new[i] - x[i];
          const int s = d > 0.0 ? 1 : (d < 0.0 ? -1 : 0);
          if (s != 0) {
            if (prev_sign[i] != 0 && s != prev_sign[i]) ++diag->sign_flips[i];
            prev_sign[i] = s;
          }
        }
      }
      x[i] = xi;
    }
    if (iterations) *iterations = iter + 1;
    if (diag) {
      diag->iterations = iter + 1;
      diag->worst_ratio = worst;
    }
    if (worst < 1.0 && damp == 1.0) {
      if (diag) diag->reason = NewtonDiag::Reason::kConverged;
      return true;
    }
  }
  return false;  // diag->reason stays kMaxIterations
}

// ------------------------------------------------- ConvergenceOrchestrator

ConvergenceOrchestrator::ConvergenceOrchestrator(Circuit& ckt,
                                                 const SolverOptions& opts,
                                                 NewtonWorkspace& ws)
    : ckt_(ckt), opts_(opts), ws_(ws) {}

bool ConvergenceOrchestrator::run_newton(std::vector<double>& x,
                                         const StampContext& proto,
                                         double gmin, double source_scale,
                                         double ptc_geq,
                                         const std::vector<double>* ptc_ref) {
  int iters = 0;
  const bool ok = newton_solve(ckt_, x, opts_, gmin, source_scale, proto,
                               ws_, &iters, &diag_, ptc_geq, ptc_ref);
  stats_.iterations = iters;  // the last solve is the one that counts
  return ok;
}

void ConvergenceOrchestrator::merge_failure(SolveStage stage,
                                            SolveFailure::Cause ladder_cause) {
  report_.stage = stage;  // deepest stage attempted so far
  switch (diag_.reason) {
    case NewtonDiag::Reason::kSingular:
      report_.cause = SolveFailure::Cause::kSingular;
      break;
    case NewtonDiag::Reason::kNonFinite:
      report_.cause = SolveFailure::Cause::kNonFinite;
      break;
    default:
      report_.cause = ladder_cause;
      break;
  }
  // Attributions stick: a later stage without a culprit keeps the earlier
  // stage's (the floating node names itself in stage 1; a stalled
  // pseudo-transient run has nothing to add).
  if (diag_.bad_row >= 0) {
    report_.bad_row = diag_.bad_row;
    report_.culprit = row_name(ckt_, diag_.bad_row);
  }
  if (!diag_.culprit.empty()) {
    report_.culprit = "device '" + diag_.culprit + "'";
  }
  const int n_nodes = ckt_.num_nodes();
  if (!diag_.update_ratio.empty() && diag_.worst_ratio > 0.0) {
    std::vector<std::pair<double, int>> ranked;
    ranked.reserve(n_nodes);
    for (int i = 0; i < n_nodes; ++i) {
      if (diag_.update_ratio[i] >= 1.0) {
        ranked.emplace_back(diag_.update_ratio[i], i);
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (static_cast<int>(ranked.size()) > opts_.failure_report_nodes) {
      ranked.resize(opts_.failure_report_nodes);
    }
    if (!ranked.empty()) {
      report_.worst_nodes.clear();
      for (const auto& [ratio, i] : ranked) {
        report_.worst_nodes.push_back({ckt_.node_name(i + 1), ratio});
      }
    }
  }
  if (!diag_.sign_flips.empty() && diag_.iterations >= 8) {
    const int threshold = std::max(4, diag_.iterations / 3);
    std::vector<std::string> osc;
    for (int i = 0; i < n_nodes; ++i) {
      if (diag_.sign_flips[i] >= threshold) {
        osc.push_back(ckt_.node_name(i + 1));
        if (static_cast<int>(osc.size()) >= opts_.failure_report_nodes) break;
      }
    }
    if (!osc.empty()) report_.oscillating_nodes = std::move(osc);
  }
}

void ConvergenceOrchestrator::fail() { throw SolveFailureError(report_); }

bool ConvergenceOrchestrator::gmin_ramp(std::vector<double>& x,
                                        const StampContext& proto) {
  const std::vector<double> x0 = x;
  int rungs = 0;

  // Phase 1: land anywhere on the ladder — start at gmin_initial and
  // escalate the shunt when even that fails.
  double gmin = opts_.gmin_initial;
  bool landed = false;
  while (rungs < opts_.gmin_max_rungs && gmin <= 1e2) {
    ++rungs;
    x = x0;
    if (run_newton(x, proto, gmin, 1.0)) {
      landed = true;
      break;
    }
    gmin *= 100.0;
  }
  stats_.gmin_rungs = rungs;
  if (!landed) return false;

  // Phase 2: descend toward gmin_final with a multiplicative factor that
  // accelerates on success (fac^2) and backs off on failure (sqrt(fac))
  // instead of marching a fixed geometric ladder off a cliff.
  double fac = std::pow(opts_.gmin_final / opts_.gmin_initial,
                        1.0 / std::max(1, opts_.gmin_steps));
  fac = std::clamp(fac, 1e-6, 0.9);
  std::vector<double> x_good = x;
  while (gmin > opts_.gmin_final * (1.0 + 1e-9)) {
    if (rungs >= opts_.gmin_max_rungs) break;
    const double next = std::max(gmin * fac, opts_.gmin_final);
    ++rungs;
    ++stats_.gmin_rungs;
    x = x_good;
    if (run_newton(x, proto, next, 1.0)) {
      gmin = next;
      x_good = x;
      fac = std::max(fac * fac, 1e-9);
    } else {
      ++stats_.gmin_backtracks;
      fac = std::sqrt(fac);
      if (fac > 0.97) break;  // rung spacing collapsed: stalled
    }
  }
  stats_.gmin_rungs = rungs;
  if (gmin <= opts_.gmin_final * (1.0 + 1e-9)) {
    x = x_good;
    return true;
  }
  // Stalled mid-ramp: one direct jump to gmin_final from the deepest
  // converged rung sometimes lands in the basin anyway.
  x = x_good;
  return run_newton(x, proto, opts_.gmin_final, 1.0);
}

bool ConvergenceOrchestrator::source_ramp(std::vector<double>& x,
                                          const StampContext& proto) {
  const int n = ckt_.num_unknowns();
  x.assign(n, 0.0);  // zero bias: the homotopy's natural start
  std::vector<double> x_good = x;
  double scale = 0.0;
  double ds = 1.0 / std::max(1, opts_.source_steps);
  int rungs = 0;
  while (scale < 1.0 - 1e-12 && rungs < opts_.source_max_rungs) {
    const double next = std::min(scale + ds, 1.0);
    ++rungs;
    x = x_good;
    if (run_newton(x, proto, opts_.gmin_final, next)) {
      scale = next;
      x_good = x;
      ds = std::min(ds * 2.0, 0.5);  // regrow after backtracks, capped
    } else {
      ++stats_.source_backtracks;
      ds *= 0.25;
      if (ds < 1e-4) break;  // increment collapsed: stalled
    }
  }
  stats_.source_rungs = rungs;
  x = x_good;
  return scale >= 1.0 - 1e-12;
}

bool ConvergenceOrchestrator::pseudo_transient(std::vector<double>& x,
                                               const StampContext& proto) {
  const int n_nodes = ckt_.num_nodes();
  std::vector<double> x_prev = x;

  // The pseudo-step controller is the transient LteController reused with
  // the Newton iteration count as its error measure: cheap pseudo-steps
  // (few iterations) grow dt toward the pure DC problem, laborious ones
  // hold it back, failed ones shrink it.
  LteControlConfig pcfg;
  pcfg.reltol = opts_.reltol;
  pcfg.abstol = opts_.v_abstol;
  pcfg.safety = 1.0;
  pcfg.trtol = 1.0;
  pcfg.growth_limit = std::max(opts_.ptc_dt_growth, 1.5);
  pcfg.shrink_limit = 0.1;
  pcfg.dt_min = opts_.ptc_dt_initial * 1e-9;
  pcfg.dt_max = opts_.ptc_dt_initial * 1e15;
  LteController ctl(pcfg);

  double dt = opts_.ptc_dt_initial;
  double verify_gate = 1.0;
  int structural_verify_failures = 0;

  for (int step = 0; step < opts_.ptc_max_steps; ++step) {
    const double geq = opts_.ptc_c_farad / dt;
    x = x_prev;
    if (!run_newton(x, proto, opts_.gmin_final, 1.0, geq, &x_prev)) {
      ++stats_.ptc_rejections;
      dt *= 0.25;
      if (dt < pcfg.dt_min) {
        x = x_prev;
        return false;  // even a heavily shunted step will not converge
      }
      continue;
    }
    ++stats_.ptc_steps;

    // Settled?  Movement below the Newton tolerance means the pseudo
    // trajectory reached steady state: verify WITHOUT the artificial
    // shunts so a genuinely defective deck (floating node) still fails
    // with the right diagnosis instead of a shunt-masked fake solution.
    const double move =
        max_update_ratio(x, x_prev, n_nodes, opts_.v_abstol, opts_.reltol);
    if (move < verify_gate) {
      std::vector<double> x_verify = x;
      if (run_newton(x_verify, proto, opts_.gmin_final, 1.0)) {
        x = std::move(x_verify);
        return true;
      }
      if (diag_.reason == NewtonDiag::Reason::kSingular ||
          diag_.reason == NewtonDiag::Reason::kNonFinite) {
        // Structural defect: more pseudo-time cannot regularize an
        // unshunted singular Jacobian.  Give up early with this diagnosis.
        if (++structural_verify_failures >= 2) {
          x = x_prev;
          return false;
        }
      }
      // Not converged yet: demand 4x more settling before re-verifying.
      verify_gate = std::max(move * 0.25, 1e-12);
    }

    const double err = stats_.iterations /
                       (0.25 * std::max(1, opts_.max_iterations));
    dt = ctl.decide(dt, err, 2).dt_next;  // state already converged; only
                                          // the dt_next policy is used
    x_prev = x;
  }

  // Pseudo-step budget exhausted: one last unshunted solve, both as a
  // final chance and to harvest an attributable diagnosis.
  x = x_prev;
  return run_newton(x, proto, opts_.gmin_final, 1.0);
}

NewtonStats ConvergenceOrchestrator::solve(std::vector<double>& x,
                                           const StampContext& proto) {
  stats_ = NewtonStats{};
  report_ = SolveFailure{};
  const std::vector<double> x0 = x;

  // Stage 1: plain damped Newton from the initial point.
  if (run_newton(x, proto, opts_.gmin_final, 1.0)) {
    stats_.stage = SolveStage::kNewton;
    return stats_;
  }
  merge_failure(SolveStage::kNewton, SolveFailure::Cause::kMaxIterations);
  obs::Tracer* const tr = obs::tracer();

  // Stage 2: adaptive gmin ramp with backtracking.
  if (opts_.allow_gmin_stepping) {
    if (tr) tr->instant("ladder:gmin-stepping", obs::now_ns());
    x = x0;
    if (gmin_ramp(x, proto)) {
      stats_.stage = SolveStage::kGminStepping;
      stats_.used_gmin_stepping = true;
      return stats_;
    }
    merge_failure(SolveStage::kGminStepping, SolveFailure::Cause::kStalled);
  }

  // Stage 3: source-scale homotopy with adaptive increments.
  if (opts_.allow_source_stepping) {
    if (tr) tr->instant("ladder:source-stepping", obs::now_ns());
    if (source_ramp(x, proto)) {
      stats_.stage = SolveStage::kSourceStepping;
      stats_.used_source_stepping = true;
      return stats_;
    }
    merge_failure(SolveStage::kSourceStepping, SolveFailure::Cause::kStalled);
  }

  // Stage 4: pseudo-transient continuation, the fallback of last resort.
  if (opts_.allow_pseudo_transient) {
    if (tr) tr->instant("ladder:pseudo-transient", obs::now_ns());
    x = x0;
    if (pseudo_transient(x, proto)) {
      stats_.stage = SolveStage::kPseudoTransient;
      stats_.used_pseudo_transient = true;
      return stats_;
    }
    merge_failure(SolveStage::kPseudoTransient, SolveFailure::Cause::kStalled);
  }

  fail();
}

Solution operating_point(Circuit& ckt, const SolverOptions& opts,
                         const std::vector<double>* x0, NewtonWorkspace* ws) {
  ckt.assign_branches();
  const int n = ckt.num_unknowns();
  CARBON_REQUIRE(n > 0, "empty circuit");

  NewtonWorkspace local_ws;
  NewtonWorkspace& w = ws ? *ws : local_ws;

  Solution sol;
  sol.x.assign(n, 0.0);
  if (x0 && static_cast<int>(x0->size()) == n) sol.x = *x0;

  StampContext proto;  // DC: transient=false
  ConvergenceOrchestrator orch(ckt, opts, w);
  sol.stats = orch.solve(sol.x, proto);  // throws SolveFailureError
  sol.iterations = sol.stats.iterations;
  sol.used_gmin_stepping = sol.stats.used_gmin_stepping;
  sol.used_source_stepping = sol.stats.used_source_stepping;
  return sol;
}

double node_voltage(const Circuit& ckt, const Solution& sol,
                    const std::string& node_name) {
  const NodeId id = ckt.find_node(node_name);
  if (id == 0) return 0.0;
  return sol.x[id - 1];
}

double vsource_current(const Circuit& ckt, const Solution& sol,
                       const VSource& src) {
  const int row = ckt.vsource_branch_index(src);
  return sol.x[row - 1];
}

std::vector<NodeId> resolve_probes(const Circuit& ckt,
                                   const std::vector<std::string>& probes) {
  std::vector<NodeId> ids;
  ids.reserve(probes.size());
  for (const auto& p : probes) ids.push_back(ckt.find_node(p));
  return ids;
}

phys::DataTable dc_sweep(Circuit& ckt, VSource& swept,
                         const std::vector<double>& values,
                         const std::vector<std::string>& probes,
                         const SolverOptions& opts, NewtonWorkspace* ws) {
  CARBON_REQUIRE(!values.empty(), "empty sweep");
  CARBON_REQUIRE(!probes.empty(), "no probe nodes");
  std::vector<std::string> cols{"sweep_v"};
  for (const auto& p : probes) cols.push_back("v(" + p + ")");
  phys::DataTable table(cols);

  // Probe names resolve to node ids once, not once per point.
  const std::vector<NodeId> probe_ids = resolve_probes(ckt, probes);

  // One workspace for the whole sweep: the matrix pattern, slot tables and
  // LU buffers persist across points, and each point warm-starts from the
  // previous solution.  A caller-owned workspace extends the reuse across
  // sweeps (deck sessions).
  NewtonWorkspace local;
  NewtonWorkspace& work = ws ? *ws : local;
  std::vector<double> warm;
  for (double v : values) {
    swept.set_wave(dc(v));
    const Solution sol =
        operating_point(ckt, opts, warm.empty() ? nullptr : &warm, &work);
    warm = sol.x;
    std::vector<double> row{v};
    for (const NodeId id : probe_ids) {
      row.push_back(id == 0 ? 0.0 : sol.x[id - 1]);
    }
    table.add_row(row);
  }
  return table;
}

namespace {

/// Row recorder shared by the fixed and adaptive transient paths: either
/// one row per accepted step (dt_print = 0), or rows thinned onto a
/// uniform dt_print grid interpolated between accepted steps — adaptive
/// runs then don't explode the DataTable, and runs with different stepping
/// land on a common grid for RMS comparison.  Interior samples use a
/// quadratic through the last three accepted points when one is available:
/// adaptive steps can span many print intervals, and linear interpolation
/// over such a span would add an O(h^2 x'') waveform error far above the
/// LTE the controller worked to bound.
class TransientRecorder {
 public:
  TransientRecorder(phys::DataTable& table, std::vector<NodeId> probe_ids,
                    std::vector<int> branch_rows, double dt_print)
      : table_(table), probe_ids_(std::move(probe_ids)),
        branch_rows_(std::move(branch_rows)), dt_print_(dt_print) {}

  void initial(const std::vector<double>& x) {
    emit_point(0.0, x);
    next_print_ = dt_print_;
  }

  void accepted(double t_old, const std::vector<double>& x_old, double t_new,
                const std::vector<double>& x_new) {
    if (dt_print_ <= 0.0) {
      emit_point(t_new, x_new);
      return;
    }
    const double eps = 1e-9 * dt_print_;
    while (next_print_ <= t_new + eps) {
      emit_interp(std::min(next_print_, t_new), t_old, x_old, t_new, x_new);
      next_print_ += dt_print_;
    }
    // Slide the 3-point window.
    t_m1_ = t_old;
    x_m1_ = x_old;
    have_m1_ = true;
  }

  /// The integrator landed on a waveform corner: the solution is only C0
  /// there, so drop the pre-corner history point instead of letting the
  /// quadratic smear the kink.
  void discontinuity() { have_m1_ = false; }

  /// Make sure the run ends with an exact row at t_end (thinned mode only;
  /// per-step mode already recorded it).
  void finish(double t_end, const std::vector<double>& x_end) {
    if (dt_print_ <= 0.0) return;
    if (last_t_ < t_end - 1e-9 * dt_print_) emit_point(t_end, x_end);
  }

 private:
  void emit_point(double t, const std::vector<double>& x) {
    row_.clear();
    row_.push_back(t);
    for (const NodeId id : probe_ids_) {
      row_.push_back(id == 0 ? 0.0 : x[id - 1]);
    }
    for (const int br : branch_rows_) row_.push_back(x[br - 1]);
    table_.add_row(row_);
    last_t_ = t;
  }

  void emit_interp(double t, double t0, const std::vector<double>& x0,
                   double t1, const std::vector<double>& x1) {
    // Lagrange weights for (t_m1, t0, t1) -> t; linear fallback without a
    // third point.
    double wm = 0.0, w0, w1;
    if (have_m1_ && t_m1_ < t0) {
      wm = (t - t0) * (t - t1) / ((t_m1_ - t0) * (t_m1_ - t1));
      w0 = (t - t_m1_) * (t - t1) / ((t0 - t_m1_) * (t0 - t1));
      w1 = (t - t_m1_) * (t - t0) / ((t1 - t_m1_) * (t1 - t0));
    } else {
      const double f = std::clamp((t - t0) / (t1 - t0), 0.0, 1.0);
      w0 = 1.0 - f;
      w1 = f;
    }
    row_.clear();
    row_.push_back(t);
    const auto interp = [&](int idx) {
      const double quad = wm == 0.0 ? 0.0 : wm * x_m1_[idx];
      return quad + w0 * x0[idx] + w1 * x1[idx];
    };
    for (const NodeId id : probe_ids_) {
      row_.push_back(id == 0 ? 0.0 : interp(id - 1));
    }
    for (const int br : branch_rows_) row_.push_back(interp(br - 1));
    table_.add_row(row_);
    last_t_ = t;
  }

  phys::DataTable& table_;
  std::vector<NodeId> probe_ids_;
  std::vector<int> branch_rows_;
  double dt_print_ = 0.0;
  double next_print_ = 0.0;
  double last_t_ = -1.0;
  double t_m1_ = 0.0;
  std::vector<double> x_m1_;
  bool have_m1_ = false;
  std::vector<double> row_;
};

void note_accepted_step(TransientStats& st, double h) {
  ++st.steps_accepted;
  st.dt_smallest =
      st.dt_smallest == 0.0 ? h : std::min(st.dt_smallest, h);
  st.dt_largest = std::max(st.dt_largest, h);
}

}  // namespace

phys::DataTable transient(Circuit& ckt, const TransientOptions& opts,
                          const std::vector<std::string>& probes,
                          const std::vector<const VSource*>& current_probes) {
  CARBON_REQUIRE(opts.t_stop > 0.0 && opts.dt > 0.0,
                 "transient needs positive t_stop and dt");
  CARBON_REQUIRE(!probes.empty(), "no probe nodes");

  std::vector<std::string> cols{"time_s"};
  for (const auto& p : probes) cols.push_back("v(" + p + ")");
  for (const auto* src : current_probes) cols.push_back("i(" + src->name() + ")");
  phys::DataTable table(cols);

  ckt.reset_state();
  ckt.assign_branches();

  // Workspace shared by the initial OP and every time step — and, when the
  // caller provides one (ensemble workers), across whole transient runs.
  NewtonWorkspace local_ws;
  NewtonWorkspace& ws = opts.workspace ? *opts.workspace : local_ws;

  // Initial condition: DC operating point with sources at t=0.
  Solution sol = operating_point(ckt, opts.solver, nullptr, &ws);
  std::vector<double> x = sol.x;
  std::vector<double> x_try, x_pred;

  // Resolve probe nodes and source branch rows once; the record loop runs
  // every accepted time step.
  const std::vector<NodeId> probe_ids = resolve_probes(ckt, probes);
  std::vector<int> branch_rows;
  branch_rows.reserve(current_probes.size());
  for (const auto* src : current_probes) {
    branch_rows.push_back(ckt.vsource_branch_index(*src));
  }

  if (opts.ic == TransientIc::kFromOperatingPoint) {
    StampContext ic_ctx;
    ic_ctx.x = &x;
    for (const auto& el : ckt.elements()) el->set_transient_ic(ic_ctx);
  }

  TransientStats local_stats;
  TransientStats& st = opts.stats ? *opts.stats : local_stats;
  st = TransientStats{};
  st.op = sol.stats;

  TransientRecorder rec(table, probe_ids, branch_rows, opts.dt_print);
  rec.initial(x);

  // Stamp-context prototype shared by every step of either path.
  StampContext proto_base;
  proto_base.transient = true;
  proto_base.bypass_vtol = opts.bypass_vtol;
  proto_base.counters = &st.evals;

  double t = 0.0;

  // One TLS load per transient call; step-loop instrumentation below is
  // branch-only when no tracer is attached.
  obs::Tracer* const tr = obs::tracer();

  if (!opts.adaptive) {
    // ---- fixed-step path: the classic dt grid with halving-on-failure,
    // kept as the bit-stable reference the adaptive engine is verified
    // against.
    bool first_step = true;  // BE start-up step stabilizes trap ringing
    while (t < opts.t_stop - 1e-21) {
      if (opts.solver.cancel) opts.solver.cancel->throw_if_stopped("transient");
      obs::ScopedSpan step_span("tran-step");
      double dt = std::min(opts.dt, opts.t_stop - t);
      int halvings = 0;
      for (;;) {
        StampContext proto = proto_base;
        proto.dt_s = dt;
        proto.trapezoidal = opts.trapezoidal && !first_step;
        proto.time_s = t + dt;

        x_try = x;
        int iters = 0;
        const bool converged =
            newton_solve(ckt, x_try, opts.solver, opts.solver.gmin_final,
                         1.0, proto, ws, &iters);
        st.newton_iterations += iters;
        if (!converged) {
          if (tr) tr->instant("newton-reject", obs::now_ns());
          ++st.steps_rejected_newton;
          ++halvings;
          if (halvings <= opts.max_step_halvings) {
            dt *= 0.5;
            continue;
          }
          // Halving exhausted: re-enter the full convergence ladder for
          // this step from the last accepted state (gmin ramp, source
          // stepping, pseudo-transient).  Throws SolveFailureError with
          // the per-node diagnosis when even that fails.
          if (tr) tr->instant("recovery", obs::now_ns());
          ConvergenceOrchestrator orch(ckt, opts.solver, ws);
          x_try = x;
          const NewtonStats rs = orch.solve(x_try, proto);
          st.newton_iterations += rs.iterations;
          ++st.orchestrator_recoveries;
        }
        // Accept: update element state with the converged voltages.
        StampContext accept_ctx = proto;
        accept_ctx.x = &x_try;
        for (const auto& el : ckt.elements()) el->accept_step(accept_ctx);
        rec.accepted(t, x, t + dt, x_try);
        std::swap(x, x_try);
        t += dt;
        first_step = false;
        note_accepted_step(st, dt);
        break;
      }
    }
    rec.finish(t, x);
    st.jacobian_reuses = ws.mna.factor_skip_count();
    return table;
  }

  // ---- adaptive path: LTE-controlled variable steps on a trapezoidal
  // corrector (BE at start-up and after breakpoints), with the polynomial
  // predictor doubling as the Newton warm start.
  LteControlConfig cfg;
  cfg.reltol = opts.lte_reltol;
  cfg.abstol = opts.lte_abstol;
  cfg.trtol = opts.trtol;
  cfg.dt_max = opts.dt_max > 0.0 ? opts.dt_max : opts.t_stop / 50.0;
  cfg.dt_min = opts.dt_min > 0.0
                   ? opts.dt_min
                   : std::max(opts.t_stop * 1e-12, opts.dt * 1e-6);
  cfg.dt_min = std::min(cfg.dt_min, cfg.dt_max);
  cfg.pi = opts.lte_pi;
  LteController ctl(cfg);
  PredictorHistory hist;

  const std::vector<double> bps = ckt.collect_breakpoints(opts.t_stop);
  size_t bp_idx = 0;

  const double t_eps = 1e-12 * opts.t_stop;
  double dt = std::clamp(opts.dt, cfg.dt_min, cfg.dt_max);
  int consecutive_failures = 0;

  while (t < opts.t_stop - t_eps) {
    if (opts.solver.cancel) opts.solver.cancel->throw_if_stopped("transient");
    obs::ScopedSpan step_span("tran-step");
    // Never step across a source corner: clamp to the next breakpoint (or
    // t_stop) and land on it exactly.
    while (bp_idx < bps.size() && bps[bp_idx] <= t + t_eps) ++bp_idx;
    const double t_limit = bp_idx < bps.size() ? bps[bp_idx] : opts.t_stop;
    double h = dt;
    bool hits_limit = false;
    if (t + h >= t_limit - t_eps) {
      h = t_limit - t;
      hits_limit = true;
    }

    const bool use_trap = opts.trapezoidal && hist.depth() >= 2;

    StampContext proto = proto_base;
    proto.dt_s = h;
    proto.trapezoidal = use_trap;
    proto.time_s = t + h;

    const int pred_order = hist.predict(x, h, x_pred);
    x_try = pred_order > 0 ? x_pred : x;

    int iters = 0;
    const bool converged =
        newton_solve(ckt, x_try, opts.solver, opts.solver.gmin_final, 1.0,
                     proto, ws, &iters);
    st.newton_iterations += iters;
    bool recovered = false;
    if (!converged) {
      if (tr) tr->instant("newton-reject", obs::now_ns());
      ++st.steps_rejected_newton;
      ++consecutive_failures;
      if (consecutive_failures <= opts.max_step_halvings &&
          h > cfg.dt_min * (1.0 + 1e-12)) {
        dt = std::max(0.25 * h, cfg.dt_min);
        ctl.reset_history();  // the stored PI error belongs to the failed
                              // step
        continue;
      }
      // Step-size control exhausted at the dt_min floor: re-enter the
      // full convergence ladder for this step from the last accepted
      // state.  Throws SolveFailureError with the per-node diagnosis
      // when even that fails.
      if (tr) tr->instant("recovery", obs::now_ns());
      ConvergenceOrchestrator orch(ckt, opts.solver, ws);
      x_try = x;
      const NewtonStats rs = orch.solve(x_try, proto);
      st.newton_iterations += rs.iterations;
      ++st.orchestrator_recoveries;
      recovered = true;
    }
    consecutive_failures = 0;

    if (recovered) {
      // The ladder may have dragged the iterate through arbitrary
      // homotopy states; there is no usable LTE estimate, and the
      // history polynomial no longer describes the trajectory.  Accept
      // the step, keep the current (small) step size and restart the
      // integrator's memory below.
    } else if (pred_order > 0) {
      const double factor = hist.lte_factor(h, use_trap, pred_order);
      const double ratio =
          lte_error_ratio(x_try, x_pred, ckt.num_nodes(), factor, cfg);
      const LteController::Decision dec =
          ctl.step(h, ratio, use_trap && pred_order >= 2 ? 3 : 2);
      if (!dec.accept) {
        if (tr) tr->instant("lte-reject", obs::now_ns());
        ++st.steps_rejected_lte;
        dt = dec.dt_next;
        continue;
      }
      dt = dec.dt_next;
    } else {
      // Start-up / post-breakpoint step has no error estimate: accept but
      // grow only modestly until the predictor is back.
      dt = std::clamp(2.0 * h, cfg.dt_min, cfg.dt_max);
    }

    // Accept: update element state with the converged voltages.
    StampContext accept_ctx = proto;
    accept_ctx.x = &x_try;
    for (const auto& el : ckt.elements()) el->accept_step(accept_ctx);
    const double t_new = hits_limit ? t_limit : t + h;
    rec.accepted(t, x, t_new, x_try);
    if (recovered) {
      hist.reset();
      ctl.reset_history();
      rec.discontinuity();
      dt = std::clamp(h, cfg.dt_min, cfg.dt_max);
    } else {
      hist.advance(x, h);
    }
    std::swap(x, x_try);
    t = t_new;
    note_accepted_step(st, h);

    if (hits_limit && t < opts.t_stop - t_eps) {
      // Landed on a waveform corner: the history on the far side describes
      // a different polynomial, so restart the integrator.  The first step
      // after the restart is a blind BE step (no predictor, no LTE test),
      // so take it at a tenth of the reference dt — its uncontrolled
      // O(h^2) error would otherwise set the accuracy floor of the run.
      if (tr) tr->instant("breakpoint", obs::now_ns());
      ++st.breakpoints_hit;
      hist.reset();
      ctl.reset_history();
      rec.discontinuity();
      dt = std::clamp(0.1 * opts.dt, cfg.dt_min, cfg.dt_max);
    }
  }
  rec.finish(opts.t_stop, x);
  st.jacobian_reuses = ws.mna.factor_skip_count();
  return table;
}

}  // namespace carbon::spice
