#include "spice/analyses.h"

#include <algorithm>
#include <cmath>

#include "phys/linalg.h"
#include "phys/require.h"

namespace carbon::spice {

void NewtonWorkspace::resize(int n) {
  if (jac.rows() != n || jac.cols() != n) jac = phys::Matrix(n, n);
  rhs.resize(n);
  x_new.resize(n);
}

/// One full Newton–Raphson solve at fixed gmin / source scale, on a
/// caller-provided workspace.  The loop body is allocation-free: the
/// Jacobian and RHS are refilled in place, the LU refactors into its
/// existing storage and the solve happens in the x_new buffer.
bool newton_solve(Circuit& ckt, std::vector<double>& x,
                  const SolverOptions& opts, double gmin, double source_scale,
                  const StampContext& proto, NewtonWorkspace& ws,
                  int* iterations) {
  const int n = ckt.num_unknowns();
  ws.resize(n);

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ws.jac.fill(0.0);
    std::fill(ws.rhs.begin(), ws.rhs.end(), 0.0);

    StampContext ctx = proto;
    ctx.jac = &ws.jac;
    ctx.rhs = &ws.rhs;
    ctx.x = &x;
    ctx.gmin = gmin;
    ctx.source_scale = source_scale;

    for (const auto& el : ckt.elements()) el->stamp(ctx);

    try {
      ws.lu.factor(ws.jac);
    } catch (const phys::ConvergenceError&) {
      return false;  // singular at this homotopy rung
    }
    std::copy(ws.rhs.begin(), ws.rhs.end(), ws.x_new.begin());
    ws.lu.solve_in_place(ws.x_new);

    // Damped update: limit node-voltage movement per iteration.
    double max_dv = 0.0;
    const int n_nodes = ckt.num_nodes();
    for (int i = 0; i < n_nodes; ++i) {
      max_dv = std::max(max_dv, std::abs(ws.x_new[i] - x[i]));
    }
    double damp = 1.0;
    if (max_dv > opts.v_step_limit) damp = opts.v_step_limit / max_dv;

    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
      const double xi = x[i] + damp * (ws.x_new[i] - x[i]);
      const double tol = opts.v_abstol + opts.reltol * std::abs(xi);
      worst = std::max(worst, std::abs(xi - x[i]) / tol);
      x[i] = xi;
    }
    if (iterations) *iterations = iter + 1;
    if (worst < 1.0 && damp == 1.0) return true;
  }
  return false;
}

Solution operating_point(Circuit& ckt, const SolverOptions& opts,
                         const std::vector<double>* x0, NewtonWorkspace* ws) {
  ckt.assign_branches();
  const int n = ckt.num_unknowns();
  CARBON_REQUIRE(n > 0, "empty circuit");

  NewtonWorkspace local_ws;
  NewtonWorkspace& w = ws ? *ws : local_ws;

  Solution sol;
  sol.x.assign(n, 0.0);
  if (x0 && static_cast<int>(x0->size()) == n) sol.x = *x0;

  StampContext proto;  // DC: transient=false
  int iters = 0;

  // 1) Plain Newton from the initial point.
  std::vector<double> x = sol.x;
  if (newton_solve(ckt, x, opts, opts.gmin_final, 1.0, proto, w, &iters)) {
    sol.x = std::move(x);
    sol.iterations = iters;
    return sol;
  }

  // 2) Gmin stepping: start heavily shunted, relax geometrically.
  x = sol.x;
  bool ok = true;
  const double ratio = std::pow(opts.gmin_final / opts.gmin_initial,
                                1.0 / std::max(1, opts.gmin_steps - 1));
  double gmin = opts.gmin_initial;
  for (int s = 0; s < opts.gmin_steps; ++s) {
    if (!newton_solve(ckt, x, opts, gmin, 1.0, proto, w, &iters)) {
      ok = false;
      break;
    }
    gmin *= ratio;
  }
  if (ok &&
      newton_solve(ckt, x, opts, opts.gmin_final, 1.0, proto, w, &iters)) {
    sol.x = std::move(x);
    sol.iterations = iters;
    sol.used_gmin_stepping = true;
    return sol;
  }

  // 3) Source stepping from zero bias.
  x.assign(n, 0.0);
  ok = true;
  for (int s = 1; s <= opts.source_steps; ++s) {
    const double scale = static_cast<double>(s) / opts.source_steps;
    if (!newton_solve(ckt, x, opts, opts.gmin_final, scale, proto, w,
                      &iters)) {
      ok = false;
      break;
    }
  }
  if (ok) {
    sol.x = std::move(x);
    sol.iterations = iters;
    sol.used_source_stepping = true;
    return sol;
  }

  throw phys::ConvergenceError(
      "operating_point: Newton, gmin stepping and source stepping all "
      "failed");
}

double node_voltage(const Circuit& ckt, const Solution& sol,
                    const std::string& node_name) {
  const NodeId id = ckt.find_node(node_name);
  if (id == 0) return 0.0;
  return sol.x[id - 1];
}

double vsource_current(const Circuit& ckt, const Solution& sol,
                       const VSource& src) {
  const int row = ckt.vsource_branch_index(src);
  return sol.x[row - 1];
}

phys::DataTable dc_sweep(Circuit& ckt, VSource& swept,
                         const std::vector<double>& values,
                         const std::vector<std::string>& probes,
                         const SolverOptions& opts) {
  CARBON_REQUIRE(!values.empty(), "empty sweep");
  CARBON_REQUIRE(!probes.empty(), "no probe nodes");
  std::vector<std::string> cols{"sweep_v"};
  for (const auto& p : probes) cols.push_back("v(" + p + ")");
  phys::DataTable table(cols);

  // One workspace for the whole sweep: the Jacobian/LU buffers persist
  // across points, and each point warm-starts from the previous solution.
  NewtonWorkspace ws;
  std::vector<double> warm;
  for (double v : values) {
    swept.set_wave(dc(v));
    const Solution sol =
        operating_point(ckt, opts, warm.empty() ? nullptr : &warm, &ws);
    warm = sol.x;
    std::vector<double> row{v};
    for (const auto& p : probes) row.push_back(node_voltage(ckt, sol, p));
    table.add_row(row);
  }
  return table;
}

phys::DataTable transient(Circuit& ckt, const TransientOptions& opts,
                          const std::vector<std::string>& probes,
                          const std::vector<const VSource*>& current_probes) {
  CARBON_REQUIRE(opts.t_stop > 0.0 && opts.dt > 0.0,
                 "transient needs positive t_stop and dt");
  CARBON_REQUIRE(!probes.empty(), "no probe nodes");

  std::vector<std::string> cols{"time_s"};
  for (const auto& p : probes) cols.push_back("v(" + p + ")");
  for (const auto* src : current_probes) cols.push_back("i(" + src->name() + ")");
  phys::DataTable table(cols);

  ckt.reset_state();
  ckt.assign_branches();

  // Workspace shared by the initial OP and every time step.
  NewtonWorkspace ws;

  // Initial condition: DC operating point with sources at t=0.
  Solution sol = operating_point(ckt, opts.solver, nullptr, &ws);
  std::vector<double> x = sol.x;
  std::vector<double> x_try;

  const auto record = [&](double t) {
    std::vector<double> row{t};
    for (const auto& p : probes) {
      const NodeId id = ckt.find_node(p);
      row.push_back(id == 0 ? 0.0 : x[id - 1]);
    }
    for (const auto* src : current_probes) {
      row.push_back(x[ckt.vsource_branch_index(*src) - 1]);
    }
    table.add_row(row);
  };
  record(0.0);

  double t = 0.0;
  bool first_step = true;  // BE start-up step stabilizes trap ringing
  while (t < opts.t_stop - 1e-21) {
    double dt = std::min(opts.dt, opts.t_stop - t);
    int halvings = 0;
    for (;;) {
      StampContext proto;
      proto.transient = true;
      proto.dt_s = dt;
      proto.trapezoidal = opts.trapezoidal && !first_step;
      proto.time_s = t + dt;

      x_try = x;
      int iters = 0;
      if (newton_solve(ckt, x_try, opts.solver, opts.solver.gmin_final, 1.0,
                       proto, ws, &iters)) {
        // Accept: update element state with the converged voltages.
        StampContext accept_ctx = proto;
        accept_ctx.x = &x_try;
        for (const auto& el : ckt.elements()) el->accept_step(accept_ctx);
        std::swap(x, x_try);
        t += dt;
        first_step = false;
        record(t);
        break;
      }
      ++halvings;
      CARBON_REQUIRE(halvings <= opts.max_step_halvings,
                     "transient: step size collapsed without convergence");
      dt *= 0.5;
    }
  }
  return table;
}

}  // namespace carbon::spice
