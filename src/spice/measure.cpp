#include "spice/measure.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "phys/require.h"

namespace carbon::spice {

VtcMetrics analyze_vtc(const phys::DataTable& vtc, const std::string& vin_col,
                       const std::string& vout_col, double v_dd) {
  const std::vector<double> vin = vtc.column(vin_col);
  const std::vector<double> vout = vtc.column(vout_col);
  const int n = static_cast<int>(vin.size());
  CARBON_REQUIRE(n >= 3, "VTC needs at least 3 points");

  VtcMetrics m;
  m.v_dd = v_dd;

  // Switching threshold: vout - vin crossing zero.
  m.v_switch = v_dd / 2.0;
  for (int i = 1; i < n; ++i) {
    const double f0 = vout[i - 1] - vin[i - 1];
    const double f1 = vout[i] - vin[i];
    if (f0 >= 0.0 && f1 < 0.0) {
      const double t = f0 / (f0 - f1);
      m.v_switch = vin[i - 1] + t * (vin[i] - vin[i - 1]);
      break;
    }
  }

  // Segment slopes; the VTC of an inverter is monotone decreasing.
  std::vector<double> slope(n - 1);
  for (int i = 0; i < n - 1; ++i) {
    slope[i] = (vout[i + 1] - vout[i]) / (vin[i + 1] - vin[i]);
  }
  for (double s : slope) m.max_abs_gain = std::max(m.max_abs_gain, -s);
  m.regenerative = m.max_abs_gain > 1.0;

  if (!m.regenerative) {
    // No unity-gain pair: logic levels are undefined, noise margins zero —
    // exactly the paper's verdict on the non-saturating inverter.
    m.v_il = m.v_ih = m.v_switch;
    m.v_oh = vout.front();
    m.v_ol = vout.back();
    m.nm_low = m.nm_high = 0.0;
    return m;
  }

  // First input where the falling slope reaches -1 (VIL) and the last (VIH).
  int i_il = -1, i_ih = -1;
  for (int i = 0; i < n - 1; ++i) {
    if (slope[i] <= -1.0) { i_il = i; break; }
  }
  for (int i = n - 2; i >= 0; --i) {
    if (slope[i] <= -1.0) { i_ih = i; break; }
  }
  CARBON_REQUIRE(i_il >= 0 && i_ih >= 0, "inconsistent slope scan");

  // Interpolate the exact unity-gain inputs within the bracketing segments.
  auto interp_unity = [&](int seg, bool entering) {
    const int prev = entering ? seg - 1 : seg + 1;
    if (prev < 0 || prev >= n - 1) return 0.5 * (vin[seg] + vin[seg + 1]);
    const double s0 = slope[prev], s1 = slope[seg];
    if (s1 == s0) return vin[seg];
    const double t = (-1.0 - s0) / (s1 - s0);
    const double x0 = 0.5 * (vin[prev] + vin[prev + 1]);
    const double x1 = 0.5 * (vin[seg] + vin[seg + 1]);
    return x0 + std::clamp(t, 0.0, 1.0) * (x1 - x0);
  };
  m.v_il = interp_unity(i_il, true);
  m.v_ih = interp_unity(i_ih, false);

  // Output levels at the unity-gain inputs.
  auto vout_at = [&](double x) {
    if (x <= vin.front()) return vout.front();
    if (x >= vin.back()) return vout.back();
    for (int i = 1; i < n; ++i) {
      if (vin[i] >= x) {
        const double t = (x - vin[i - 1]) / (vin[i] - vin[i - 1]);
        return vout[i - 1] + t * (vout[i] - vout[i - 1]);
      }
    }
    return vout.back();
  };
  m.v_oh = vout_at(m.v_il);
  m.v_ol = vout_at(m.v_ih);
  m.nm_low = m.v_il - m.v_ol;
  m.nm_high = m.v_oh - m.v_ih;
  return m;
}

double crossing_time(const phys::DataTable& tran, const std::string& col,
                     double level, bool rising, double t_min) {
  const std::vector<double> t = tran.column("time_s");
  const std::vector<double> v = tran.column(col);
  for (size_t i = 1; i < t.size(); ++i) {
    if (t[i] < t_min) continue;
    const bool crossed = rising ? (v[i - 1] < level && v[i] >= level)
                                : (v[i - 1] > level && v[i] <= level);
    if (crossed) {
      const double f = (level - v[i - 1]) / (v[i] - v[i - 1]);
      return t[i - 1] + f * (t[i] - t[i - 1]);
    }
  }
  return -1.0;
}

double propagation_delay(const phys::DataTable& tran,
                         const std::string& in_col,
                         const std::string& out_col, double v_dd,
                         bool in_rising) {
  const double mid = 0.5 * v_dd;
  const double t_in = crossing_time(tran, in_col, mid, in_rising);
  CARBON_REQUIRE(t_in >= 0.0, "input never crosses mid level");
  const double t_out = crossing_time(tran, out_col, mid, !in_rising, t_in);
  CARBON_REQUIRE(t_out >= 0.0, "output never crosses mid level");
  return t_out - t_in;
}

double oscillation_period(const phys::DataTable& tran, const std::string& col,
                          double v_mid, int skip_cycles) {
  // Scan the samples directly — one crossing per rising segment.
  const std::vector<double> t = tran.column("time_s");
  const std::vector<double> v = tran.column(col);
  std::vector<double> crossings;
  for (size_t i = 1; i < t.size(); ++i) {
    if (v[i - 1] < v_mid && v[i] >= v_mid) {
      const double f = (v_mid - v[i - 1]) / (v[i] - v[i - 1]);
      crossings.push_back(t[i - 1] + f * (t[i] - t[i - 1]));
    }
  }
  CARBON_REQUIRE(static_cast<int>(crossings.size()) >= skip_cycles + 2,
                 "not enough oscillation cycles recorded");
  double sum = 0.0;
  int count = 0;
  for (size_t i = skip_cycles + 1; i < crossings.size(); ++i) {
    sum += crossings[i] - crossings[i - 1];
    ++count;
  }
  return sum / count;
}

double supply_energy(const phys::DataTable& tran, const std::string& i_col,
                     double v_dd) {
  const std::vector<double> t = tran.column("time_s");
  const std::vector<double> i = tran.column(i_col);
  double e = 0.0;
  for (size_t k = 1; k < t.size(); ++k) {
    // SPICE sign: a sourcing supply has negative branch current.
    e += -0.5 * (i[k] + i[k - 1]) * v_dd * (t[k] - t[k - 1]);
  }
  return e;
}

double column_stat(const phys::DataTable& table, const std::string& xcol,
                   const std::string& col, ColumnStat stat, double from,
                   double to) {
  const std::vector<double> x = table.column(xcol);
  const std::vector<double> v = table.column(col);
  double lo = 0.0, hi = 0.0, sum = 0.0, sum_sq = 0.0, span = 0.0;
  size_t count = 0;
  double x_prev = 0.0, v_prev = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] < from || x[i] > to) continue;
    if (count == 0) {
      lo = hi = v[i];
    } else {
      lo = std::min(lo, v[i]);
      hi = std::max(hi, v[i]);
      // Trapezoid weights: adaptive grids are far from uniform.
      const double w = x[i] - x_prev;
      sum += 0.5 * (v[i] + v_prev) * w;
      sum_sq += 0.5 * (v[i] * v[i] + v_prev * v_prev) * w;
      span += w;
    }
    x_prev = x[i];
    v_prev = v[i];
    ++count;
  }
  CARBON_REQUIRE(count > 0, "column_stat: empty measurement window");
  switch (stat) {
    case ColumnStat::kMax:
      return hi;
    case ColumnStat::kMin:
      return lo;
    case ColumnStat::kPeakToPeak:
      return hi - lo;
    case ColumnStat::kAvg:
      return span > 0.0 ? sum / span : v_prev;
    case ColumnStat::kRms:
      return span > 0.0 ? std::sqrt(sum_sq / span) : std::abs(v_prev);
  }
  CARBON_REQUIRE(false, "column_stat: unreachable");
  return 0.0;
}

double value_at(const phys::DataTable& table, const std::string& xcol,
                const std::string& col, double x) {
  const std::vector<double> xs = table.column(xcol);
  const std::vector<double> vs = table.column(col);
  CARBON_REQUIRE(!xs.empty(), "value_at: empty table");
  if (x <= xs.front()) return vs.front();
  if (x >= xs.back()) return vs.back();
  for (size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] >= x) {
      const double w = xs[i] - xs[i - 1];
      if (w <= 0.0) return vs[i];
      const double f = (x - xs[i - 1]) / w;
      return vs[i - 1] + f * (vs[i] - vs[i - 1]);
    }
  }
  return vs.back();
}

}  // namespace carbon::spice
