#include "spice/circuit.h"

#include <atomic>

#include "phys/require.h"
#include "spice/integrator.h"

namespace carbon::spice {

Circuit::Circuit() {
  static std::atomic<std::uint64_t> next_uid{0};
  uid_ = ++next_uid;
  names_.push_back("0");
  node_ids_["0"] = 0;
  node_ids_["gnd"] = 0;
}

NodeId Circuit::node(const std::string& name) {
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.push_back(name);
  node_ids_[name] = id;
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  const auto it = node_ids_.find(name);
  CARBON_REQUIRE(it != node_ids_.end(), "unknown node: " + name);
  return it->second;
}

bool Circuit::has_node(const std::string& name) const {
  return node_ids_.count(name) != 0;
}

const std::string& Circuit::node_name(NodeId id) const {
  CARBON_REQUIRE(id >= 0 && id < static_cast<NodeId>(names_.size()),
                 "node id out of range");
  return names_[id];
}

template <typename T, typename... Args>
T* Circuit::add_element(Args&&... args) {
  auto el = std::make_unique<T>(std::forward<Args>(args)...);
  T* raw = el.get();
  elements_.push_back(std::move(el));
  ++revision_;
  return raw;
}

Resistor* Circuit::add_resistor(const std::string& name, const std::string& n1,
                                const std::string& n2, double ohms) {
  return add_element<Resistor>(name, node(n1), node(n2), ohms);
}

Capacitor* Circuit::add_capacitor(const std::string& name,
                                  const std::string& n1,
                                  const std::string& n2, double farad,
                                  double v_init) {
  return add_element<Capacitor>(name, node(n1), node(n2), farad, v_init);
}

VSource* Circuit::add_vsource(const std::string& name,
                              const std::string& n_plus,
                              const std::string& n_minus, WaveformPtr wave) {
  auto* src =
      add_element<VSource>(name, node(n_plus), node(n_minus), std::move(wave));
  ++num_branches_;
  return src;
}

VSource* Circuit::add_vsource(const std::string& name,
                              const std::string& n_plus,
                              const std::string& n_minus, double dc_value) {
  return add_vsource(name, n_plus, n_minus, dc(dc_value));
}

ISource* Circuit::add_isource(const std::string& name,
                              const std::string& n_plus,
                              const std::string& n_minus, WaveformPtr wave) {
  return add_element<ISource>(name, node(n_plus), node(n_minus),
                              std::move(wave));
}

Diode* Circuit::add_diode(const std::string& name, const std::string& anode,
                          const std::string& cathode, double i_sat_a,
                          double ideality) {
  return add_element<Diode>(name, node(anode), node(cathode), i_sat_a,
                            ideality);
}

Fet* Circuit::add_fet(const std::string& name, const std::string& drain,
                      const std::string& gate, const std::string& source,
                      device::DeviceModelPtr model, double multiplier) {
  return add_element<Fet>(name, node(drain), node(gate), node(source),
                          std::move(model), multiplier);
}

void Circuit::reset_state() {
  for (auto& el : elements_) el->reset_state();
}

std::vector<double> Circuit::collect_breakpoints(double t_stop) const {
  std::vector<double> raw;
  for (const auto& el : elements_) el->collect_breakpoints(t_stop, raw);
  return merge_breakpoints(std::move(raw), t_stop);
}

void Circuit::assign_branches() {
  int running = 0;
  for (auto& el : elements_) {
    if (el->num_branches() > 0) {
      el->set_branch_base(num_nodes() + running + 1);  // 1-based MNA row
      running += el->num_branches();
    }
  }
}

int Circuit::vsource_branch_index(const VSource& src) const {
  CARBON_REQUIRE(src.branch_base() > 0,
                 "assign_branches() has not run for this circuit");
  return src.branch_base();
}

}  // namespace carbon::spice
