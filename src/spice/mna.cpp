#include "spice/mna.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/trace.h"
#include "phys/require.h"

namespace carbon::spice {

bool MnaSystem::matches(const Circuit& ckt, LinearBackend backend,
                        int sparse_threshold) const {
  // Keyed on the circuit's process-unique uid (not its address: a freshly
  // constructed circuit can reuse a destroyed one's storage) plus its
  // topology revision.
  return uid_ == ckt.uid() && revision_ == ckt.revision() &&
         n_ == ckt.num_unknowns() && requested_ == backend &&
         threshold_ == sparse_threshold;
}

void MnaSystem::build(Circuit& ckt, LinearBackend backend,
                      int sparse_threshold) {
  if (matches(ckt, backend, sparse_threshold)) return;

  ckt.assign_branches();
  n_ = ckt.num_unknowns();
  n_nodes_ = ckt.num_nodes();
  CARBON_REQUIRE(n_ > 0, "empty circuit");
  sparse_ = backend == LinearBackend::kSparse ||
            (backend == LinearBackend::kAuto && n_ >= sparse_threshold);

  // --- capture pass: record every element's stamp footprint.  Captured
  // with transient=true so capacitor companion entries are part of the
  // pattern; DC stamps then use a prefix of the recorded sequence.
  jac_coords_.clear();
  rhs_rows_.clear();
  const auto& elements = ckt.elements();
  jac_off_.assign(elements.size() + 1, 0);
  rhs_off_.assign(elements.size() + 1, 0);

  const std::vector<double> x_probe(n_, 0.0);
  StampContext cap;
  cap.capture_jac = &jac_coords_;
  cap.capture_rhs = &rhs_rows_;
  cap.x = &x_probe;
  cap.transient = true;
  cap.dt_s = 1.0;
  for (size_t e = 0; e < elements.size(); ++e) {
    elements[e]->stamp(cap);
    jac_off_[e + 1] = static_cast<int>(jac_coords_.size());
    rhs_off_[e + 1] = static_cast<int>(rhs_rows_.size());
  }

  // --- pattern + storage.
  rhs_.assign(n_, 0.0);
  if (sparse_) {
    std::vector<std::pair<int, int>> coords;
    coords.reserve(jac_coords_.size() + n_nodes_);
    for (const auto& [r, c] : jac_coords_) {
      if (r > 0 && c > 0) coords.emplace_back(r - 1, c - 1);
    }
    // Every node diagonal joins the pattern unconditionally so the
    // pseudo-transient shunts of add_node_shunts() are plain value writes
    // (from_coords merges duplicates, so this is free when an element
    // already stamps the position).
    for (int i = 0; i < n_nodes_; ++i) coords.emplace_back(i, i);
    smat_ = phys::SparseMatrix::from_coords(n_, std::move(coords));
    slu_ = phys::SparseLu();  // drop any stale pattern analysis
    djac_ = phys::Matrix();
  } else {
    djac_ = phys::Matrix(n_, n_);
    smat_ = phys::SparseMatrix();
    slu_ = phys::SparseLu();
  }

  // --- resolve the footprints to direct value pointers.
  jac_slots_.resize(jac_coords_.size());
  for (size_t t = 0; t < jac_coords_.size(); ++t) {
    const auto [r, c] = jac_coords_[t];
    if (r <= 0 || c <= 0) {
      jac_slots_[t] = &jac_trash_;
    } else if (sparse_) {
      jac_slots_[t] = &smat_.values()[smat_.slot(r - 1, c - 1)];
    } else {
      jac_slots_[t] = djac_.data() + static_cast<size_t>(r - 1) * n_ + (c - 1);
    }
  }
  rhs_slots_.resize(rhs_rows_.size());
  for (size_t t = 0; t < rhs_rows_.size(); ++t) {
    const int r = rhs_rows_[t];
    rhs_slots_[t] = r <= 0 ? &rhs_trash_ : &rhs_[r - 1];
  }
  node_diag_.resize(n_nodes_);
  for (int i = 0; i < n_nodes_; ++i) {
    node_diag_[i] = sparse_
                        ? &smat_.values()[smat_.slot(i, i)]
                        : djac_.data() + static_cast<size_t>(i) * n_ + i;
  }

  // --- static/dynamic split: classify every element, then stamp the
  // constant-Jacobian ones once into the baseline that restore_baseline()
  // memcpy's back each iteration.  Elements with a constant Jacobian and
  // no RHS footprint (resistors) disappear from the stamp loop entirely.
  stamp_mode_.assign(elements.size(), StampMode::kDynamic);
  static_skipped_ = 0;
  for (size_t e = 0; e < elements.size(); ++e) {
    if (!elements[e]->jacobian_is_constant()) continue;
    const bool has_rhs = rhs_off_[e + 1] > rhs_off_[e];
    stamp_mode_[e] = has_rhs ? StampMode::kStaticRhs : StampMode::kSkip;
    if (!has_rhs) ++static_skipped_;
  }

  ckt_ = &ckt;
  stamp_static_baseline();

  uid_ = ckt.uid();
  revision_ = ckt.revision();
  requested_ = backend;
  threshold_ = sparse_threshold;
  ++builds_;
}

void MnaSystem::stamp_static_baseline() {
  CARBON_REQUIRE(ckt_ != nullptr, "stamp_static_baseline before build");
  zero();
  {
    const std::vector<double> x_probe(n_, 0.0);
    const auto& elements = ckt_->elements();
    StampContext base;
    base.x = &x_probe;  // static stamps must not read the iterate
    base.transient = true;
    base.dt_s = 1.0;
    for (size_t e = 0; e < elements.size(); ++e) {
      if (stamp_mode_[e] == StampMode::kDynamic) continue;
      base.jac_slots = jac_slots_.data() + jac_off_[e];
      base.rhs_slots = rhs_slots_.data() + rhs_off_[e];
      base.jac_cursor = 0;
      base.rhs_cursor = 0;
#ifndef NDEBUG
      base.debug_jac = jac_coords_.data() + jac_off_[e];
      base.debug_rhs = rhs_rows_.data() + rhs_off_[e];
      base.debug_jac_count = jac_off_[e + 1] - jac_off_[e];
      base.debug_rhs_count = rhs_off_[e + 1] - rhs_off_[e];
#endif
      elements[e]->stamp(base);
    }
  }
  const double* vals = sparse_ ? smat_.values().data() : djac_.data();
  const size_t nvals = sparse_ ? static_cast<size_t>(smat_.nnz())
                               : static_cast<size_t>(n_) * n_;
  baseline_.assign(vals, vals + nvals);
  std::fill(rhs_.begin(), rhs_.end(), 0.0);  // drop baseline RHS writes

  // Both the factored image and any held factorization belong to the old
  // element values.
  factored_values_.clear();
  factored_valid_ = false;
}

void MnaSystem::refresh_baseline() { stamp_static_baseline(); }

int MnaSystem::nnz() const { return sparse_ ? smat_.nnz() : n_ * n_; }

void MnaSystem::zero() {
  if (sparse_) {
    smat_.zero_values();
  } else {
    djac_.fill(0.0);
  }
  std::fill(rhs_.begin(), rhs_.end(), 0.0);
  jac_trash_ = 0.0;
  rhs_trash_ = 0.0;
}

void MnaSystem::restore_baseline() {
  double* vals = sparse_ ? smat_.values().data() : djac_.data();
  std::memcpy(vals, baseline_.data(), baseline_.size() * sizeof(double));
  std::fill(rhs_.begin(), rhs_.end(), 0.0);
  jac_trash_ = 0.0;
  rhs_trash_ = 0.0;
}

void MnaSystem::stamp_all(const Circuit& ckt, StampContext& ctx) {
  CARBON_REQUIRE(ckt_ == &ckt && uid_ == ckt.uid(),
                 "MnaSystem stamped with a foreign circuit");
  ctx.jac = nullptr;
  ctx.rhs = nullptr;
  ctx.capture_jac = nullptr;
  ctx.capture_rhs = nullptr;
  obs::PhaseTimes* const ph = ctx.phases;
  const auto& elements = ckt.elements();
  for (size_t e = 0; e < elements.size(); ++e) {
    const StampMode mode = stamp_mode_[e];
    if (mode == StampMode::kSkip) continue;  // fully in the static baseline
    ctx.suppress_jac = mode == StampMode::kStaticRhs;
    ctx.jac_slots = jac_slots_.data() + jac_off_[e];
    ctx.rhs_slots = rhs_slots_.data() + rhs_off_[e];
    ctx.jac_cursor = 0;
    ctx.rhs_cursor = 0;
#ifndef NDEBUG
    ctx.debug_jac = jac_coords_.data() + jac_off_[e];
    ctx.debug_rhs = rhs_rows_.data() + rhs_off_[e];
    ctx.debug_jac_count = jac_off_[e + 1] - jac_off_[e];
    ctx.debug_rhs_count = rhs_off_[e + 1] - rhs_off_[e];
#endif
    if (ph && mode == StampMode::kDynamic) {
      // Dynamic elements are the device-eval phase; static-RHS sources and
      // baseline elements are assembly bookkeeping and stay in stamp_ns.
      const long long t0 = obs::now_ns();
      elements[e]->stamp(ctx);
      ph->eval_ns += obs::now_ns() - t0;
    } else {
      elements[e]->stamp(ctx);
    }
  }
  ctx.jac_slots = nullptr;
  ctx.rhs_slots = nullptr;
  ctx.suppress_jac = false;
}

void MnaSystem::add_node_shunts(double geq, const std::vector<double>& x_ref) {
  CARBON_REQUIRE(static_cast<int>(x_ref.size()) >= n_nodes_,
                 "add_node_shunts: reference state too short");
  for (int i = 0; i < n_nodes_; ++i) {
    *node_diag_[i] += geq;
    rhs_[i] += geq * x_ref[i];
  }
}

bool MnaSystem::factor() {
  failure_ = FactorFailure{};
  const double* vals = sparse_ ? smat_.values().data() : djac_.data();
  const size_t nvals = sparse_ ? static_cast<size_t>(smat_.nnz())
                               : static_cast<size_t>(n_) * n_;
  // The RHS never enters the Jacobian compare below, so a poisoned residual
  // must be caught here or it rides an otherwise valid factorization
  // straight into the Newton update.
  for (int i = 0; i < n_; ++i) {
    if (!std::isfinite(rhs_[i])) {
      failure_ = {FactorFailure::Kind::kNonFinite, i};
      factored_valid_ = false;
      return false;
    }
  }
  // Shamanskii fast path: a bit-identical Jacobian (all devices bypassed,
  // same companion conductances) reuses the held factorization outright.
  // The O(nnz) compare is noise next to the O(fill-flops) refactor it
  // saves, and bitwise equality keeps the reuse exact.  Matching values
  // are known finite — they factored successfully last time — so the
  // non-finite scan is needed only past this point.
  if (factored_valid_ && factored_values_.size() == nvals &&
      std::memcmp(factored_values_.data(), vals,
                  nvals * sizeof(double)) == 0) {
    ++factor_skips_;
    if (obs::Tracer* trc = obs::tracer()) {
      trc->instant("factor-skip", obs::now_ns());
    }
    return true;
  }
  for (size_t t = 0; t < nvals; ++t) {
    if (!std::isfinite(vals[t])) {
      int row;
      if (sparse_) {
        const auto& rp = smat_.row_ptr();
        row = static_cast<int>(
            std::upper_bound(rp.begin(), rp.end(), static_cast<int>(t)) -
            rp.begin() - 1);
      } else {
        row = static_cast<int>(t / static_cast<size_t>(n_));
      }
      failure_ = {FactorFailure::Kind::kNonFinite, row};
      factored_valid_ = false;
      return false;
    }
  }
  try {
    obs::ScopedSpan refactor_span("numeric-refactor");
    if (sparse_) {
      slu_.factor(smat_);
    } else {
      dlu_.factor(djac_);
    }
  } catch (const phys::SingularMatrixError& e) {
    failure_ = {e.kind() == phys::SingularMatrixError::Kind::kNonFinite
                    ? FactorFailure::Kind::kNonFinite
                    : FactorFailure::Kind::kSingular,
                e.row()};
    factored_valid_ = false;
    return false;
  } catch (const phys::ConvergenceError&) {
    failure_ = {FactorFailure::Kind::kSingular, -1};
    factored_valid_ = false;
    return false;
  }
  factored_values_.assign(vals, vals + nvals);
  factored_valid_ = true;
  return true;
}

void MnaSystem::solve_in_place(std::vector<double>& bx) const {
  if (sparse_) {
    slu_.solve_in_place(bx);
  } else {
    dlu_.solve_in_place(bx);
  }
}

void MnaSystem::copy_rhs(std::vector<double>& out) const {
  out.resize(n_);
  std::copy(rhs_.begin(), rhs_.end(), out.begin());
}

}  // namespace carbon::spice
