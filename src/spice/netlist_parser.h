#pragma once

/// @file netlist_parser.h
/// A SPICE-deck-style text netlist parser, so circuits can be described in
/// the familiar card format instead of C++:
///
///     * comment lines start with '*' or '#'
///     vdd  vdd 0   1.0
///     vin  in  0   PULSE(0 1 1n 10p 10p 2n 4n)
///     r1   vdd out 10k
///     c1   out 0   10f
///     mn1  out in 0   nfet          ; model name from the registry
///     mp1  out in vdd pfet  m=2     ; with a parallel multiplier
///     d1   a   0   is=1e-14 n=1.2
///
/// Device models are supplied through a registry mapping model names to
/// IDeviceModel instances (the parser cannot invent physics).  Engineering
/// suffixes (f p n u m k meg g t) are understood on every number.

#include <map>
#include <memory>
#include <string>

#include "device/ivmodel.h"
#include "spice/circuit.h"

namespace carbon::spice {

/// Named device models available to 'm' cards.
using ModelRegistry = std::map<std::string, device::DeviceModelPtr>;

/// Thrown on malformed decks, with the offending line number and text.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse a numeric literal with optional SPICE engineering suffix
/// ("2.5k" -> 2500, "10f" -> 1e-14, "3meg" -> 3e6).  Throws ParseError.
double parse_spice_number(const std::string& token);

/// Parse a full deck into a fresh Circuit.
/// @param text    the netlist text
/// @param models  registry resolving FET model names
std::unique_ptr<Circuit> parse_netlist(const std::string& text,
                                       const ModelRegistry& models = {});

}  // namespace carbon::spice
