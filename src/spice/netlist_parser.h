#pragma once

/// @file netlist_parser.h
/// The SPICE deck frontend: the netlist *is* the API.  A deck is parsed
/// into a Deck — a flattened element list plus analysis requests, measure
/// specs, parameter scopes and a step grid — which SimSession (session.h)
/// dispatches through the engine without the caller writing any C++.
///
///     * comment lines start with '*' or '#'; ';' starts a trailing comment
///     .title cnt inverter chain
///     .param vdd=0.9 cl={2*10f}
///     .model n1 alphan(vt=0.2 alpha=1.3 k=60u lambda=0.08)
///     .model p1 alphap(vt=0.2 alpha=1.3 k=60u lambda=0.08)
///     .subckt inv in out vdd cl=10f
///     mp out in vdd p1
///     mn out in 0   n1
///     c1 out 0 {cl}
///     .ends
///     vdd vdd 0 {vdd}
///     vin in  0 PULSE(0 {vdd} 1n 10p 10p 2n 4n)
///     x1 in  m1 vdd inv cl={cl}
///     x2 m1  m2 vdd inv
///     .step param vdd 0.6 1.0 0.2
///     .tran 10p 4n
///     .measure tran tplh delay v(in) v(m1) vdd={vdd} rise
///     .end
///
/// Hierarchy is flattened at parse time: instance x1's internal node n
/// becomes "x1.n" and its element m becomes "x1.m"; ports map onto the
/// parent's nodes and "0"/"gnd" stays global.  Values anywhere on a card
/// are expressions over .param symbols — `{vdd/2}`, `2*cl`, plain numbers
/// with engineering suffixes (f p n u m k meg mil g t, case-insensitive).
///
/// Device models come from `.model` cards (alphan/alphap, linn/linp,
/// cnfet/cpfet families) or from a registry of IDeviceModel instances
/// supplied by the embedding program (the parser cannot invent physics).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "device/ivmodel.h"
#include "spice/circuit.h"

namespace carbon::spice {

/// Named device models available to 'm' cards (base registry; deck-local
/// `.model` cards shadow it).
using ModelRegistry = std::map<std::string, device::DeviceModelPtr>;

/// Thrown on malformed decks.  Carries the offending line number and the
/// raw line text so a driver can render a structured error document.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& reason, int line_no = 0,
                      std::string line_text = "");

  /// 1-based deck line of the offending card (0 = not attributable).
  int line() const { return line_no_; }
  /// The raw text of the offending line ("" when not attributable).
  const std::string& line_text() const { return line_text_; }
  /// The failure description without the line context.
  const std::string& reason() const { return reason_; }

 private:
  int line_no_;
  std::string line_text_;
  std::string reason_;
};

/// Parse a numeric literal with optional SPICE engineering suffix
/// ("2.5k" -> 2500, "10f" -> 1e-14, "3MEG" -> 3e6, "1e3k" -> 1e6,
/// "5mil" -> 127e-6).  Suffixes are case-insensitive and may be followed
/// by a purely alphabetic unit tail ("10kohm", "100nF"); anything else
/// trailing is rejected, as are hex, inf and nan.  Throws ParseError.
double parse_spice_number(const std::string& token);

/// Parameter environment: evaluated parameter values by (lowercase) name.
using ParamEnv = std::map<std::string, double>;

/// Evaluate a deck value expression: numbers with engineering suffixes,
/// parameter references, + - * / ^ with the usual precedence, parentheses,
/// and the functions sqrt/abs/exp/log/log10/pow/min/max/floor/ceil.
/// A surrounding {...} brace pair is stripped first.  Throws ParseError
/// (line 0) on malformed expressions or unknown parameters.
double eval_expr(const std::string& expr, const ParamEnv& env);

/// One `name=expr` parameter definition.
struct ParamSpec {
  std::string name;
  std::string expr;
  int line_no = 0;
  std::string line;
};

/// A lexical parameter scope: the globals (scope 0) or one subcircuit
/// instance (formals bound to instance overrides or defaults, then the
/// subckt-local .param cards).  Scopes chain through `parent`.
struct ParamScope {
  int parent = -1;  ///< -1 = root
  std::vector<ParamSpec> params;
};

/// One flattened element card.  Values and option values are unevaluated
/// expression strings so a Deck can be re-instantiated under any step's
/// parameter environment.
struct ElementCard {
  char kind = 0;                    ///< 'r' 'c' 'v' 'i' 'd' 'm'
  std::string name;                 ///< flattened ("x1.mn")
  std::vector<std::string> nodes;   ///< flattened ("x1.out", "0", ...)
  std::string model;                ///< m-cards: model name
  std::vector<std::string> values;  ///< positional value/waveform tokens
  std::vector<std::pair<std::string, std::string>> options;  ///< key=expr
  int scope = 0;                    ///< index into Deck::scopes
  int line_no = 0;
  std::string line;
};

/// One `.model <name> <type>(key=val ...)` card.  Types: alphan/alphap
/// (Sakurai–Newton alpha-power law), linn/linp (non-saturating linear FET),
/// cnfet/cpfet (quasi-ballistic CNT-FET).  All types accept the noise
/// options gamma/kf/af.  The p-flavours build the n-model and wrap it in
/// device::PTypeMirror.
struct ModelCard {
  std::string name;
  std::string type;
  std::vector<std::pair<std::string, std::string>> options;
  int line_no = 0;
  std::string line;
};

/// One analysis request card.
struct AnalysisCard {
  enum class Kind { kOp, kDc, kTran, kAc, kNoise };
  Kind kind = Kind::kOp;

  // .dc <vsource> <start> <stop> <step>
  std::string source;  ///< swept source (.dc) / designated input (.noise)
  std::string start_expr, stop_expr, step_expr;

  // .tran <tstep> <tstop>
  std::string dt_expr, tstop_expr;

  // .ac dec <pts/decade> <fstart> <fstop>   (also .noise)
  std::string npd_expr, fstart_expr, fstop_expr;

  // .noise v(<node>) <vsource> dec <n> <fstart> <fstop>
  std::string output;

  std::vector<std::pair<std::string, std::string>> options;  ///< key=expr
  int line_no = 0;
  std::string line;
};

/// One `.measure <analysis> <name> <fn> <signals...> [key=val] [flags]`
/// card, mapped onto spice/measure.h by the session:
///   max|min|avg|rms|pp <sig> [from=] [to=]   — column statistics
///   cross  <sig> val=<v> [rise|fall] [after=<t>]
///   delay  <in-sig> <out-sig> vdd=<v> [rise|fall]   — 50% prop. delay
///   period <sig> mid=<v> [skip=<cycles>]
///   energy i(<vsrc>) vdd=<v>
///   find   <sig> at=<x>
///   corner <sig>                              — AC -3 dB frequency
///   vtc    <in-sig> <out-sig> vdd=<v> metric=<gain|nml|nmh|vil|vih|
///                                              vol|voh|vswitch>
///   value  <sig>                              — OP node voltage / current
struct MeasureCard {
  std::string analysis;  ///< "op" "dc" "tran" "ac" "noise"
  std::string name;
  std::string fn;
  std::vector<std::string> signals;  ///< "v(out)", "i(vdd)", ...
  std::vector<std::pair<std::string, std::string>> options;  ///< + flags=""
  int line_no = 0;
  std::string line;
};

/// One `.step param <name> <start> <stop> <incr>` or
/// `.step param <name> list <v1> <v2> ...` card.  Multiple .step cards
/// form a cartesian grid; the first card varies slowest.
struct StepSpec {
  std::string param;
  std::vector<std::string> values;  ///< expression per grid value
  int line_no = 0;
  std::string line;
};

/// A parsed deck: the instantiated circuit (at the base parameter values)
/// plus everything needed to re-instantiate or retune it per step point
/// and to drive analyses and measures.  Move-only (owns the Circuit).
struct Deck {
  std::string title;

  std::unique_ptr<Circuit> circuit;  ///< built at the base parameter env

  std::vector<ParamScope> scopes;  ///< [0] = globals
  std::vector<ModelCard> models;
  std::vector<ElementCard> elements;  ///< flattened, in stamp order
  std::vector<AnalysisCard> analyses;
  std::vector<MeasureCard> measures;
  std::vector<StepSpec> steps;

  /// `.probe v(a) i(v1)` selections; empty + !probe_none = every node.
  std::vector<std::string> probe_nodes;
  std::vector<std::string> probe_currents;
  bool probe_none = false;  ///< `.probe none`: measures only, no tables

  std::vector<std::pair<std::string, std::string>> options;  ///< .options

  /// Canonical value-free description of the flattened topology (element
  /// kinds, names, nodes) and its FNV-1a hash — the session-cache key:
  /// decks differing only in parameter/model values share an entry.
  std::string topology_signature;
  std::uint64_t topology_hash = 0;
};

/// Parse a full deck.  @p models resolves m-card model names not defined
/// by deck-local `.model` cards; Deck::circuit is instantiated at the base
/// parameter environment (first .step value where stepped).
Deck parse_deck(const std::string& text, const ModelRegistry& models = {});

/// Step-grid parameter overrides, one env per step point in run order (a
/// single empty env when the deck has no .step).  Each env holds ONLY the
/// stepped parameters, so globals that depend on them re-resolve per step
/// when passed to instantiate()/retune() as overrides.
std::vector<ParamEnv> expand_steps(const Deck& deck);

/// Memo of built deck-local models keyed on (name, evaluated options):
/// a session passes one so a .step sweep rebuilds a (possibly expensive)
/// .model only when a stepped parameter actually reaches it.
using ModelMemo = std::map<std::string, device::DeviceModelPtr>;

/// Instantiate a fresh Circuit from the flattened cards under the given
/// global parameter overrides (stepped values; pass {} for the base point).
std::unique_ptr<Circuit> instantiate(const Deck& deck,
                                     const ModelRegistry& models,
                                     const ParamEnv& overrides = {},
                                     ModelMemo* memo = nullptr);

/// Re-tune an instantiated circuit's element *values* in place for a new
/// parameter environment without touching its topology: resistances,
/// capacitances, waveforms, diode and FET models.  The circuit must have
/// been built from this deck's card list (same topology signature).  After
/// a retune the caller must refresh any MnaSystem static baseline built
/// from the old values (NewtonWorkspace users: mna.refresh_baseline()).
void retune(const Deck& deck, const ModelRegistry& models,
            const ParamEnv& overrides, Circuit& ckt,
            ModelMemo* memo = nullptr);

/// Deprecated thin wrapper kept for existing callers: parse and return
/// just the circuit of the deck's base instantiation.
std::unique_ptr<Circuit> parse_netlist(const std::string& text,
                                       const ModelRegistry& models = {});

}  // namespace carbon::spice
