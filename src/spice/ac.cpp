#include "spice/ac.h"

#include <cmath>

#include "phys/linalg_complex.h"
#include "phys/require.h"
#include "spice/analyses.h"

namespace carbon::spice {

phys::DataTable ac_sweep(Circuit& ckt, VSource& input,
                         const std::vector<std::string>& probes,
                         const AcOptions& opt) {
  CARBON_REQUIRE(opt.f_stop_hz > opt.f_start_hz && opt.f_start_hz > 0.0,
                 "need a positive ascending frequency range");
  CARBON_REQUIRE(opt.points_per_decade >= 1, "points per decade >= 1");
  CARBON_REQUIRE(!probes.empty(), "no probe nodes");

  // DC operating point first; the AC system is linearized around it.
  const Solution dc_sol = operating_point(ckt, opt.dc);

  input.set_ac_magnitude(1.0);
  const int n = ckt.num_unknowns();

  std::vector<std::string> cols{"freq_hz"};
  for (const auto& p : probes) {
    cols.push_back("mag(" + p + ")");
    cols.push_back("phase_deg(" + p + ")");
  }
  phys::DataTable table(cols);

  const double decades = std::log10(opt.f_stop_hz / opt.f_start_hz);
  const int n_points =
      static_cast<int>(std::ceil(decades * opt.points_per_decade)) + 1;

  // Probe names resolve once; the LU workspace persists across points.
  const std::vector<NodeId> probe_ids = resolve_probes(ckt, probes);

  phys::ComplexMatrix jac(n, n);
  std::vector<phys::Complex> rhs(n);
  std::vector<phys::Complex> x(n);
  phys::ComplexLuFactorization lu;
  for (int i = 0; i < n_points; ++i) {
    const double f = opt.f_start_hz *
                     std::pow(10.0, decades * i / (n_points - 1));
    jac.fill({});
    std::fill(rhs.begin(), rhs.end(), phys::Complex{});
    AcStampContext ctx;
    ctx.jac = &jac;
    ctx.rhs = &rhs;
    ctx.x_dc = &dc_sol.x;
    ctx.omega = 2.0 * M_PI * f;
    for (const auto& el : ckt.elements()) el->stamp_ac(ctx);

    lu.factor(jac);
    x = rhs;
    lu.solve_in_place(x);

    std::vector<double> row{f};
    for (const NodeId id : probe_ids) {
      const phys::Complex v = (id == 0) ? phys::Complex{} : x[id - 1];
      row.push_back(std::abs(v));
      row.push_back(std::arg(v) * 180.0 / M_PI);
    }
    table.add_row(row);
  }
  input.set_ac_magnitude(0.0);
  return table;
}

double corner_frequency(const phys::DataTable& ac,
                        const std::string& mag_column) {
  const std::vector<double> f = ac.column("freq_hz");
  const std::vector<double> m = ac.column(mag_column);
  CARBON_REQUIRE(!m.empty(), "empty AC table");
  const double corner = m.front() / std::sqrt(2.0);
  for (size_t i = 1; i < m.size(); ++i) {
    if (m[i - 1] >= corner && m[i] < corner) {
      // Log-interpolate the crossing.
      const double t = (std::log(corner) - std::log(m[i - 1])) /
                       (std::log(m[i]) - std::log(m[i - 1]));
      return f[i - 1] * std::pow(f[i] / f[i - 1], t);
    }
  }
  return -1.0;
}

}  // namespace carbon::spice
