#include "spice/ac.h"

#include <cmath>

#include "obs/trace.h"
#include "phys/require.h"
#include "spice/analyses.h"
#include "spice/smallsignal.h"

namespace carbon::spice {

phys::DataTable ac_sweep(Circuit& ckt, VSource& input,
                         const std::vector<std::string>& probes,
                         const AcOptions& opt) {
  CARBON_REQUIRE(!probes.empty(), "no probe nodes");
  const std::vector<double> freqs =
      log_frequency_grid(opt.f_start_hz, opt.f_stop_hz, opt.points_per_decade);

  // DC operating point first; the AC system is linearized around it.
  const Solution dc_sol = operating_point(ckt, opt.dc, nullptr, opt.workspace);

  // The stimulus magnitude must come back down even when the sweep throws
  // (singular small-signal system at some frequency).
  struct MagnitudeGuard {
    VSource& src;
    ~MagnitudeGuard() { src.set_ac_magnitude(0.0); }
  } guard{input};
  input.set_ac_magnitude(1.0);

  std::vector<std::string> cols{"freq_hz"};
  for (const auto& p : probes) {
    cols.push_back("mag(" + p + ")");
    cols.push_back("phase_deg(" + p + ")");
  }
  phys::DataTable table(cols);

  // Probe names resolve once; the complex system captures every element's
  // small-signal footprint once (G image + jωC slots) and the sparse LU
  // analyzes the pattern once — each frequency point is a baseline
  // restore, a jωC rescale, a numeric refactor and one solve.
  const std::vector<NodeId> probe_ids = resolve_probes(ckt, probes);
  AcSystem local;
  AcSystem& sys = opt.system ? *opt.system : local;
  sys.build(ckt, dc_sol.x, opt.dc.backend, opt.dc.sparse_threshold);

  obs::Tracer* const tr = obs::tracer();
  obs::PhaseTimes* const ph = opt.dc.phases;
  const bool timing = (ph != nullptr) || (tr != nullptr);

  std::vector<phys::Complex> x;
  std::vector<double> row;
  for (const double f : freqs) {
    // Cooperative deadline/cancel poll, mirroring the Newton and transient
    // loops: a long sweep on a huge system stays bounded.
    if (opt.dc.cancel) opt.dc.cancel->throw_if_stopped("ac");
    long long t0 = 0, t1 = 0;
    if (timing) t0 = obs::now_ns();
    CARBON_REQUIRE(sys.assemble_factor(2.0 * M_PI * f),
                   "ac_sweep: singular small-signal system");
    if (timing) {
      t1 = obs::now_ns();
      if (ph) ph->factor_ns += t1 - t0;
    }
    x = sys.stimulus();
    sys.solve_in_place(x);
    if (timing) {
      const long long t2 = obs::now_ns();
      if (ph) ph->solve_ns += t2 - t1;
      if (tr) tr->span("ac-point", t0, t2 - t0);
    }

    row.clear();
    row.push_back(f);
    for (const NodeId id : probe_ids) {
      const phys::Complex v = (id == 0) ? phys::Complex{} : x[id - 1];
      row.push_back(std::abs(v));
      row.push_back(std::arg(v) * 180.0 / M_PI);
    }
    table.add_row(row);
  }
  return table;
}

double corner_frequency(const phys::DataTable& ac,
                        const std::string& mag_column) {
  const std::vector<double> f = ac.column("freq_hz");
  const std::vector<double> m = ac.column(mag_column);
  CARBON_REQUIRE(!m.empty(), "empty AC table");
  const double corner = m.front() / std::sqrt(2.0);
  for (size_t i = 1; i < m.size(); ++i) {
    if (m[i - 1] >= corner && m[i] < corner) {
      // Log-interpolate the crossing.
      const double t = (std::log(corner) - std::log(m[i - 1])) /
                       (std::log(m[i]) - std::log(m[i - 1]));
      return f[i - 1] * std::pow(f[i] / f[i - 1], t);
    }
  }
  return -1.0;
}

}  // namespace carbon::spice
