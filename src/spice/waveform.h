#pragma once

/// @file waveform.h
/// Time-dependent source waveforms for the circuit simulator: DC, PULSE,
/// PWL and SIN, mirroring the classic SPICE source cards.

#include <memory>
#include <vector>

namespace carbon::spice {

/// A scalar signal of time [V or A].
class Waveform {
 public:
  virtual ~Waveform() = default;
  /// Value at time @p t_s [s].
  virtual double value(double t_s) const = 0;
  /// Value used by DC analyses (t = 0 unless overridden).
  virtual double dc_value() const { return value(0.0); }
  /// Append the waveform's slope discontinuities in (0, @p t_stop) to
  /// @p out.  The adaptive transient engine lands a step on each so the
  /// LTE controller never extrapolates across a source corner.  Smooth
  /// waveforms (DC, SIN past the delay) contribute nothing.
  virtual void breakpoints(double /*t_stop*/,
                           std::vector<double>& /*out*/) const {}
};

using WaveformPtr = std::shared_ptr<const Waveform>;

/// Constant value.
class DcWave final : public Waveform {
 public:
  explicit DcWave(double value) : value_(value) {}
  double value(double) const override { return value_; }

 private:
  double value_;
};

/// SPICE PULSE(v1 v2 td tr tf pw per).
class PulseWave final : public Waveform {
 public:
  PulseWave(double v1, double v2, double delay_s, double rise_s,
            double fall_s, double width_s, double period_s);
  double value(double t_s) const override;
  void breakpoints(double t_stop, std::vector<double>& out) const override;

 private:
  double v1_, v2_, delay_, rise_, fall_, width_, period_;
};

/// Piecewise-linear (time, value) pairs; clamps outside the range.
class PwlWave final : public Waveform {
 public:
  explicit PwlWave(std::vector<std::pair<double, double>> points);
  double value(double t_s) const override;
  void breakpoints(double t_stop, std::vector<double>& out) const override;

 private:
  std::vector<std::pair<double, double>> pts_;
};

/// SIN(offset amplitude freq [delay] [damping]).
class SinWave final : public Waveform {
 public:
  SinWave(double offset, double amplitude, double freq_hz, double delay_s = 0,
          double damping = 0);
  double value(double t_s) const override;
  double dc_value() const override { return offset_; }
  void breakpoints(double t_stop, std::vector<double>& out) const override;

 private:
  double offset_, amplitude_, freq_, delay_, damping_;
};

/// Convenience factories.
WaveformPtr dc(double value);
WaveformPtr pulse(double v1, double v2, double delay_s, double rise_s,
                  double fall_s, double width_s, double period_s);
WaveformPtr pwl(std::vector<std::pair<double, double>> points);
WaveformPtr sine(double offset, double amplitude, double freq_hz,
                 double delay_s = 0, double damping = 0);

}  // namespace carbon::spice
