#pragma once

/// @file mna.h
/// The MNA assembly + linear-solve backend shared by every analysis.
///
/// MnaSystem owns the Jacobian storage (dense phys::Matrix or sparse CSR),
/// the RHS vector, and — the heart of the fast path — the *slot tables*:
/// one capture pass per circuit topology records each element's stamp
/// footprint, builds the matrix pattern from it, and resolves every future
/// add_jac/add_rhs call to a direct value pointer.  After build(), a Newton
/// iteration is: restore_baseline(), stamp_all(), factor(),
/// solve_in_place() — no index arithmetic in the stamps, no allocation,
/// and (sparse backend) no symbolic factorization work: the LU reuses the
/// ordering and fill pattern computed once per topology across every
/// iteration, sweep point and time step.
///
/// Static/dynamic stamp split: build() classifies every element, stamps
/// the constant-Jacobian ones (resistors, source incidence rows) once
/// into a *baseline* value image, and stamp_all() then skips their
/// Jacobian writes — so an assembly pass MUST start from
/// restore_baseline(), not zero().  zero() alone leaves the static
/// entries absent (it exists for the pattern-build internals).

#include <cstdint>
#include <utility>
#include <vector>

#include "phys/linalg.h"
#include "phys/sparse.h"
#include "spice/circuit.h"
#include "spice/elements.h"

namespace carbon::spice {

/// Linear-solver backend selection.
enum class LinearBackend {
  kAuto = 0,  ///< dense below SolverOptions::sparse_threshold, sparse above
  kDense,
  kSparse,
};

class MnaSystem {
 public:
  MnaSystem() = default;
  // Slot tables hold pointers into the instance's own buffers.
  MnaSystem(const MnaSystem&) = delete;
  MnaSystem& operator=(const MnaSystem&) = delete;

  /// Build pattern + slot tables for @p ckt (runs assign_branches).  Cheap
  /// to call again for the same topology: a no-op when matches() holds.
  void build(Circuit& ckt, LinearBackend backend, int sparse_threshold);

  /// True when the instance is built for @p ckt's current topology and the
  /// same backend request.
  bool matches(const Circuit& ckt, LinearBackend backend,
               int sparse_threshold) const;

  bool is_sparse() const { return sparse_; }
  int size() const { return n_; }
  /// Structural nonzeros of the Jacobian (sparse backend; n*n for dense).
  int nnz() const;

  /// Zero the Jacobian values and the RHS.  NOT the start of an assembly
  /// pass — stamp_all() skips the static elements, whose values only
  /// restore_baseline() brings back.
  void zero();

  /// Re-stamp the constant-Jacobian elements into the static baseline
  /// after their *values* changed under an unchanged topology (deck
  /// retune: Resistor::set_resistance and friends do not bump the circuit
  /// revision precisely so the pattern, slot tables and sparse symbolic
  /// analysis survive).  Also drops the Shamanskii factored-image cache,
  /// which belongs to the old values.  No-op requirement: build() must
  /// have run for the current topology.
  void refresh_baseline();

  /// Full pattern rebuilds performed by build() over the life of the
  /// instance (cache-effectiveness diagnostics: stays at 1 per topology
  /// when workspace reuse works).
  long build_count() const { return builds_; }

  /// Start a stamping pass: restore the Jacobian values to the static
  /// baseline (the summed contributions of every jacobian_is_constant()
  /// element, memcpy'd back instead of re-stamped) and zero the RHS.  This
  /// is what the Newton loop calls instead of zero(); stamp_all() then
  /// skips the static elements' Jacobian writes.
  void restore_baseline();

  /// Elements whose stamp() call is skipped entirely by stamp_all()
  /// (constant Jacobian already in the baseline, no RHS footprint) —
  /// resistors, mostly.  Diagnostics for tests.
  int static_skipped_count() const { return static_skipped_; }

  /// Stamp every element of @p ckt through its slot table.  @p ctx carries
  /// the solve state (iterate, gmin, source scale, transient step); its
  /// slot fields are managed here.
  void stamp_all(const Circuit& ckt, StampContext& ctx);

  /// Number of node-voltage unknowns (rows [0, node_count()) of the
  /// system); the remaining rows are source branch currents.
  int node_count() const { return n_nodes_; }

  /// Add a conductance @p geq from every node to ground plus the matching
  /// history current geq * x_ref[i] on the RHS — the artificial-capacitor
  /// stamp of pseudo-transient continuation (geq = C/dt, x_ref = previous
  /// accepted state).  build() guarantees every node diagonal is in the
  /// sparse pattern, so this is a direct value write with no pattern
  /// growth.  Call between stamp_all() and factor(); restore_baseline()
  /// clears it again.
  void add_node_shunts(double geq, const std::vector<double>& x_ref);

  /// Factor the assembled Jacobian.  Returns false on numerical
  /// singularity (callers treat it as a failed homotopy rung).  The sparse
  /// backend refactors on the recorded pattern and transparently re-runs
  /// the pivot analysis if the values drifted too far from the ones the
  /// pivots were picked for.
  ///
  /// Shamanskii / modified-Newton fast path: when the assembled values are
  /// bit-identical to the last successfully factored Jacobian — which is
  /// exactly what happens when every device served its stamp from the
  /// quiescent-bypass cache and the companion conductances (dt) did not
  /// change — the numeric refactorization is skipped entirely and the held
  /// factorization is reused.  Bitwise comparison makes the reuse exact,
  /// never approximate.
  bool factor();

  /// factor() calls served by the identical-Jacobian fast path (cumulative
  /// for the life of the instance).
  long factor_skip_count() const { return factor_skips_; }

  /// Why the last factor() returned false (reset on every factor() call).
  /// `row` is the 0-based unknown index of the culprit — a node voltage
  /// when row < node_count(), a branch current otherwise; -1 when the
  /// failure could not be attributed to a row.
  struct FactorFailure {
    enum class Kind : std::uint8_t {
      kNone = 0,   ///< last factor() succeeded
      kSingular,   ///< pivot collapsed numerically
      kNonFinite,  ///< NaN/Inf in the Jacobian, RHS, or elimination
    };
    Kind kind = Kind::kNone;
    int row = -1;
  };
  const FactorFailure& factor_failure() const { return failure_; }

  /// Solve J x = b in place (b in @p bx, x out).  factor() must have
  /// succeeded.
  void solve_in_place(std::vector<double>& bx) const;

  /// Copy the assembled RHS into @p out (resized to size()).
  void copy_rhs(std::vector<double>& out) const;

  /// Symbolic analyses performed by the sparse LU (diagnostics; stays at 1
  /// per topology when pattern reuse works).
  int analyze_count() const { return slu_.analyze_count(); }

 private:
  /// Stamp the static elements into a fresh baseline image (shared tail
  /// of build() and refresh_baseline()).
  void stamp_static_baseline();

  const Circuit* ckt_ = nullptr;
  std::uint64_t uid_ = 0;
  std::uint64_t revision_ = 0;
  LinearBackend requested_ = LinearBackend::kAuto;
  int threshold_ = 0;
  int n_ = 0;
  int n_nodes_ = 0;
  bool sparse_ = false;
  FactorFailure failure_;

  // Backends.
  phys::Matrix djac_;
  phys::LuFactorization dlu_;
  phys::SparseMatrix smat_;
  phys::SparseLu slu_;

  std::vector<double> rhs_;
  double jac_trash_ = 0.0;  ///< sink of ground-row/col stamp writes
  double rhs_trash_ = 0.0;
  std::vector<double*> node_diag_;  ///< per-node diagonal value pointers

  // Per-element slot tables (value pointer per captured add call).
  std::vector<double*> jac_slots_, rhs_slots_;
  std::vector<int> jac_off_, rhs_off_;  // per-element offsets, size+1 each
  // Captured footprints, kept for slot-order assertions in debug builds.
  std::vector<std::pair<int, int>> jac_coords_;
  std::vector<int> rhs_rows_;

  // Static/dynamic stamp split: how stamp_all() treats each element.
  enum class StampMode : std::uint8_t {
    kDynamic,    ///< full stamp every iteration
    kStaticRhs,  ///< Jacobian from the baseline, RHS stamped (sources)
    kSkip,       ///< Jacobian from the baseline, no RHS — not visited
  };
  std::vector<StampMode> stamp_mode_;
  std::vector<double> baseline_;  ///< static Jacobian values (dense or CSR)
  int static_skipped_ = 0;

  // Shamanskii fast path: image of the last successfully factored values.
  std::vector<double> factored_values_;
  bool factored_valid_ = false;
  long factor_skips_ = 0;
  long builds_ = 0;
};

}  // namespace carbon::spice
