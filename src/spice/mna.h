#pragma once

/// @file mna.h
/// The MNA assembly + linear-solve backend shared by every analysis.
///
/// MnaSystem owns the Jacobian storage (dense phys::Matrix or sparse CSR),
/// the RHS vector, and — the heart of the fast path — the *slot tables*:
/// one capture pass per circuit topology records each element's stamp
/// footprint, builds the matrix pattern from it, and resolves every future
/// add_jac/add_rhs call to a direct value pointer.  After build(), a Newton
/// iteration is: zero(), stamp_all(), factor(), solve_in_place() — no index
/// arithmetic in the stamps, no allocation, and (sparse backend) no symbolic
/// factorization work: the LU reuses the ordering and fill pattern computed
/// once per topology across every iteration, sweep point and time step.

#include <cstdint>
#include <utility>
#include <vector>

#include "phys/linalg.h"
#include "phys/sparse.h"
#include "spice/circuit.h"
#include "spice/elements.h"

namespace carbon::spice {

/// Linear-solver backend selection.
enum class LinearBackend {
  kAuto = 0,  ///< dense below SolverOptions::sparse_threshold, sparse above
  kDense,
  kSparse,
};

class MnaSystem {
 public:
  MnaSystem() = default;
  // Slot tables hold pointers into the instance's own buffers.
  MnaSystem(const MnaSystem&) = delete;
  MnaSystem& operator=(const MnaSystem&) = delete;

  /// Build pattern + slot tables for @p ckt (runs assign_branches).  Cheap
  /// to call again for the same topology: a no-op when matches() holds.
  void build(Circuit& ckt, LinearBackend backend, int sparse_threshold);

  /// True when the instance is built for @p ckt's current topology and the
  /// same backend request.
  bool matches(const Circuit& ckt, LinearBackend backend,
               int sparse_threshold) const;

  bool is_sparse() const { return sparse_; }
  int size() const { return n_; }
  /// Structural nonzeros of the Jacobian (sparse backend; n*n for dense).
  int nnz() const;

  /// Zero the Jacobian values and the RHS.
  void zero();

  /// Stamp every element of @p ckt through its slot table.  @p ctx carries
  /// the solve state (iterate, gmin, source scale, transient step); its
  /// slot fields are managed here.
  void stamp_all(const Circuit& ckt, StampContext& ctx);

  /// Factor the assembled Jacobian.  Returns false on numerical
  /// singularity (callers treat it as a failed homotopy rung).  The sparse
  /// backend refactors on the recorded pattern and transparently re-runs
  /// the pivot analysis if the values drifted too far from the ones the
  /// pivots were picked for.
  bool factor();

  /// Solve J x = b in place (b in @p bx, x out).  factor() must have
  /// succeeded.
  void solve_in_place(std::vector<double>& bx) const;

  /// Copy the assembled RHS into @p out (resized to size()).
  void copy_rhs(std::vector<double>& out) const;

  /// Symbolic analyses performed by the sparse LU (diagnostics; stays at 1
  /// per topology when pattern reuse works).
  int analyze_count() const { return slu_.analyze_count(); }

 private:
  const Circuit* ckt_ = nullptr;
  std::uint64_t uid_ = 0;
  std::uint64_t revision_ = 0;
  LinearBackend requested_ = LinearBackend::kAuto;
  int threshold_ = 0;
  int n_ = 0;
  bool sparse_ = false;

  // Backends.
  phys::Matrix djac_;
  phys::LuFactorization dlu_;
  phys::SparseMatrix smat_;
  phys::SparseLu slu_;

  std::vector<double> rhs_;
  double jac_trash_ = 0.0;  ///< sink of ground-row/col stamp writes
  double rhs_trash_ = 0.0;

  // Per-element slot tables (value pointer per captured add call).
  std::vector<double*> jac_slots_, rhs_slots_;
  std::vector<int> jac_off_, rhs_off_;  // per-element offsets, size+1 each
  // Captured footprints, kept for slot-order assertions in debug builds.
  std::vector<std::pair<int, int>> jac_coords_;
  std::vector<int> rhs_rows_;
};

}  // namespace carbon::spice
