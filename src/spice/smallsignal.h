#pragma once

/// @file smallsignal.h
/// The small-signal subsystem: a complex MNA backend with the same
/// symbolic-reuse discipline as the real Newton engine, plus the device
/// noise analysis built on top of it.  This is the third analysis pillar
/// next to DC and transient — it backs the paper's RF/analog case for
/// CNT/GNR FETs (transconductance roll-off, f_T, noise at scaled supplies).
///
/// AcSystem is the engine.  One *value-capture* pass per (topology,
/// operating point) records every element's small-signal footprint — the
/// frequency-independent conductance image G, the capacitance entries that
/// enter as jωC, and the stimulus phasor — and resolves them to direct
/// value slots of a complex CSR matrix (or a dense one below the sparse
/// threshold, mirroring NewtonWorkspace's auto selection).  After that no
/// element is ever consulted again: each frequency point memcpy-restores
/// the G image, rescales the captured jωC entries in place, and refactors
/// the complex sparse LU on the pattern analyzed ONCE for the whole sweep
/// (the MNA pattern is frequency-independent).
///
/// noise_sweep() adds the classic adjoint-network method: per frequency,
/// one transposed-system solve yields the transfer from every noise
/// injection site to the output node simultaneously, so the cost is two
/// triangular solves per point regardless of how many devices make noise.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "phys/linalg_complex.h"
#include "phys/sparse.h"
#include "phys/table.h"
#include "spice/analyses.h"
#include "spice/circuit.h"

namespace carbon::spice {

/// Complex MNA system for small-signal analyses.  Build once per circuit
/// topology + operating point; assemble_factor() + solve per frequency.
/// The sparse pattern and its LU symbolic analysis persist across builds
/// for the same topology (only the captured values are refreshed), so
/// repeated sweeps after re-biasing pay no symbolic work either.
class AcSystem {
 public:
  AcSystem() = default;
  // Slot tables index the instance's own value buffers.
  AcSystem(const AcSystem&) = delete;
  AcSystem& operator=(const AcSystem&) = delete;

  /// (Re)capture the circuit linearized at the DC solution @p x_dc.
  /// Backend selection mirrors NewtonWorkspace: kAuto goes sparse at
  /// sparse_threshold unknowns.  Cheap when the topology is unchanged:
  /// the pattern, slot tables and LU analysis are reused and only the
  /// captured values are refreshed.
  void build(Circuit& ckt, const std::vector<double>& x_dc,
             LinearBackend backend, int sparse_threshold);

  bool is_sparse() const { return sparse_; }
  int size() const { return n_; }
  /// Structural nonzeros of the complex Jacobian (n*n for dense).
  int nnz() const;

  /// Assemble the system at angular frequency @p omega (restore the G
  /// baseline, add jωC through the recorded slots) and factor it.
  /// Returns false on numerical singularity.
  bool assemble_factor(double omega);

  /// Solve A x = b in place.  assemble_factor() must have succeeded.
  void solve_in_place(std::vector<phys::Complex>& bx) const;

  /// Adjoint solve Aᵀ x = b in place (plain transpose): the noise
  /// analysis' one-solve-per-frequency transfer evaluation.
  void solve_transpose_in_place(std::vector<phys::Complex>& bx) const;

  /// The captured stimulus vector (frequency-independent): solve this to
  /// get the response to the designated AC inputs.
  const std::vector<phys::Complex>& stimulus() const { return rhs_; }

  /// Symbolic analyses performed by the complex sparse LU; stays at 1 per
  /// topology when pattern reuse works (diagnostics, 0 for dense).
  int analyze_count() const { return slu_.analyze_count(); }

 private:
  std::uint64_t uid_ = 0;
  std::uint64_t revision_ = 0;
  LinearBackend requested_ = LinearBackend::kAuto;
  int threshold_ = 0;
  int n_ = 0;
  bool sparse_ = false;
  bool built_ = false;

  // Backends.
  phys::SparseMatrixZ smat_;
  phys::SparseLuZ slu_;
  phys::ComplexMatrix djac_;
  phys::ComplexLuFactorization dlu_;
  bool dense_factored_ = false;

  /// Captured G image over the full value storage (CSR values or dense
  /// row-major), memcpy-restored at every frequency point.
  std::vector<phys::Complex> baseline_;
  /// Captured jωC entries: value-storage slot plus capacitance, merged per
  /// slot.  Per point: value[slot] += j * omega * c.
  std::vector<std::pair<int, double>> c_entries_;
  std::vector<phys::Complex> rhs_;
};

/// Log-spaced frequency grid with @p points_per_decade, endpoints
/// inclusive — the grid ac_sweep and noise_sweep march.
std::vector<double> log_frequency_grid(double f_start_hz, double f_stop_hz,
                                       int points_per_decade);

/// Options of a noise sweep.
struct NoiseOptions {
  double f_start_hz = 1e3;
  double f_stop_hz = 1e12;
  int points_per_decade = 10;
  double temperature_k = 300.0;
  SolverOptions dc;  ///< operating-point solver options (also selects the
                     ///< AC backend via backend/sparse_threshold)

  /// Optional caller-owned reuse state, mirroring AcOptions: the Newton
  /// workspace backs the operating-point solve, the AcSystem carries the
  /// complex pattern + symbolic analysis across sweeps of one topology.
  /// Null = per-call locals.  Not owned.
  NewtonWorkspace* workspace = nullptr;
  AcSystem* system = nullptr;
};

/// Result of a noise sweep.
struct NoiseResult {
  /// Columns: freq_hz, onoise_v2_hz (output noise PSD [V^2/Hz]),
  /// inoise_v2_hz (input-referred PSD), gain_mag (|H| input -> output).
  phys::DataTable table;

  /// Integrated output / input-referred noise [V^2] over [0, f_stop]:
  /// trapezoid across the swept band plus a flat extension of the
  /// f_start PSD down to DC (exact for white-dominated spectra; a 1/f
  /// corner below f_start is deliberately not extrapolated).
  double onoise_total_v2 = 0.0;
  double inoise_total_v2 = 0.0;

  /// Per-source integrated output-noise contributions [V^2], labelled as
  /// the elements labelled them ("r1.thermal", "m1.flicker", ...), in
  /// netlist order.  Sums to onoise_total_v2.
  std::vector<std::pair<std::string, double>> contributions;
};

/// Small-signal noise analysis: collect every element's noise sources at
/// the DC operating point, propagate each to @p output_node via one
/// adjoint solve per frequency, and report output and input-referred
/// spectral densities plus integrated totals.  @p input only defines the
/// gain reference for input-referred noise (its AC magnitude is treated
/// as 1); it contributes no noise itself.
NoiseResult noise_sweep(Circuit& ckt, VSource& input,
                        const std::string& output_node,
                        const NoiseOptions& opt = {});

}  // namespace carbon::spice
