#pragma once

/// @file ensemble.h
/// Fault-tolerant ensemble engine: Monte-Carlo / corner batches that
/// re-solve one circuit topology under thousands of perturbed device
/// models, sharded over the phys thread pool with production failure
/// semantics.  This is the fab-variation yield workload (the paper ranks
/// CNT/GNR devices by how they survive diameter/contact variation) run the
/// way a service would run it:
///
///  * Per-trial fault isolation — every exception a trial can throw
///    (SolveFailureError, NonFiniteEvalError, SingularMatrixError,
///    deadline/cancellation, anything else) is caught at the trial
///    boundary and converted into a structured TrialResult.  Trial 713
///    hitting a pathological corner yields a record naming stage, cause
///    and culprit; the batch always completes and reports a yield plus a
///    failure taxonomy.
///  * Retry with escalation — a failed trial re-runs with progressively
///    stronger SolverOptions (full convergence ladder enabled, more
///    iteration/rung headroom, tighter damping, finer time stepping),
///    bounded by a per-trial retry budget.
///  * Deadlines and cooperative cancellation — a per-trial and a per-batch
///    wall-clock budget armed on a phys::CancelToken that the Newton and
///    transient inner loops poll, so a hung corner degrades to a timed_out
///    record instead of wedging a worker.
///  * Deterministic checkpoint/resume — completed trials are spilled
///    incrementally (binary, bit-exact doubles) to a checkpoint file; an
///    interrupted batch resumed from it skips the completed trials and
///    reproduces bit-identical statistics.
///  * Determinism — trial i draws its variates from the decorrelated
///    stream phys::stream_seed(seed, i) regardless of which worker runs it
///    or how many retries earlier trials burned, so results are
///    bit-identical for any thread count.
///
/// The fault-injection counterpart (device::FaultyModelDecorator, see
/// device/faulty.h) lets tests force every one of these paths on purpose.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/report.h"
#include "phys/cancel.h"
#include "phys/rng.h"
#include "spice/analyses.h"

namespace carbon::spice {

/// Short cause tag ("max-iterations", "singular", "non-finite",
/// "stalled") — the machine-readable sibling of the prose used in
/// SolveFailure::to_string().
const char* solve_cause_name(SolveFailure::Cause cause);

/// Terminal disposition of one trial.
enum class TrialOutcome : int {
  kOk = 0,        ///< the trial function returned a measurement
  kSolveFailure,  ///< convergence ladder exhausted (SolveFailureError)
  kNonFinite,     ///< NaN/Inf device eval outside the ladder
  kSingular,      ///< singular matrix escaping the solver layers
  kTimedOut,      ///< a wall-clock deadline expired
  kCancelled,     ///< explicit cancellation stopped the trial / batch
  kError,         ///< any other std::exception from the trial body
};
const char* trial_outcome_name(TrialOutcome outcome);

/// What a successful trial hands back to the runner.
struct TrialMeasurement {
  double metric = 0.0;   ///< scalar figure of the trial (e.g. final v(q))
  bool pass = false;     ///< the yield criterion
  TransientStats stats;  ///< work accounting of the successful attempt
};

/// One trial's structured record — failure or success, every trial gets
/// one; the batch result is the full vector plus aggregate statistics.
struct TrialResult {
  long index = -1;
  bool ok = false;
  bool pass = false;          ///< yield criterion (only when ok)
  double metric = 0.0;        ///< measurement (only when ok)
  TrialOutcome outcome = TrialOutcome::kCancelled;
  int retries = 0;            ///< escalated re-runs consumed (0 = first try)
  long long wall_ns = 0;      ///< wall time across all attempts
  bool from_checkpoint = false;  ///< loaded, not recomputed, this run
  SolveFailure failure;       ///< structured ladder report (solve failures)
  std::string error;          ///< exception message (non-ok outcomes)
  TransientStats stats;       ///< work accounting of the successful attempt

  /// Taxonomy bucket, e.g. "ok", "solve-failure/gmin-stepping/singular",
  /// "timed-out" — the key the batch summary histograms failures under.
  std::string taxonomy() const;
};

/// Per-attempt context handed to the trial function.
struct TrialContext {
  long index = 0;    ///< trial number in [0, num_trials)
  int attempt = 0;   ///< 0 = first run, 1.. = escalated retries
  phys::Rng& rng;    ///< deterministic per-trial stream, fresh per attempt
  /// Solver options for this attempt: the batch's base options escalated
  /// by EnsembleRunner::escalate_solver, with the trial's cancel token
  /// already wired in.  Use these (or tuned()) for every solve.
  const SolverOptions& solver;
  /// The per-trial stop token (deadline armed, chained to the batch's).
  /// Pass it to any custom long-running loop the trial body owns.
  const phys::CancelToken* cancel = nullptr;

  /// @p base transient options adapted to this attempt: solver installed
  /// and, on retries, stepping escalated (finer dt, more halving headroom).
  TransientOptions tuned(TransientOptions base) const;
};

/// Batch configuration.
struct EnsembleOptions {
  std::uint64_t seed = 0x5eed;
  int num_threads = 0;        ///< 0 = default pool width
  int max_retries = 2;        ///< escalated re-runs per failed trial
  double trial_deadline_s = 0.0;  ///< per-attempt wall budget (0 = none)
  double batch_deadline_s = 0.0;  ///< whole-batch wall budget (0 = none)
  /// Optional external cancellation (not owned; must outlive run()).  The
  /// batch also stops when this fires.
  const phys::CancelToken* cancel = nullptr;
  /// When non-empty, completed trials are appended here incrementally and
  /// a later run with identical configuration resumes from it.
  std::string checkpoint_path;
  /// Folded into the checkpoint identity hash together with seed,
  /// num_trials and max_retries: bump it when the trial function changes
  /// meaning, so stale checkpoints are rejected instead of silently mixed.
  std::string config_tag;
  SolverOptions solver;       ///< attempt-0 solver options
};

/// Aggregate batch statistics.
struct EnsembleSummary {
  long trials = 0;
  long ok = 0;               ///< trials that produced a measurement
  long passed = 0;           ///< ok trials meeting the yield criterion
  long failed = 0;           ///< terminal structured failures
  long timed_out = 0;
  long cancelled = 0;        ///< stopped by batch cancel/deadline, not run
  long from_checkpoint = 0;  ///< results loaded instead of recomputed
  long retried_trials = 0;   ///< trials that needed at least one retry
  long retries_total = 0;
  long recovered_by_retry = 0;  ///< ok trials whose first attempt failed
  double yield = 0.0;        ///< passed / trials
  double wall_s = 0.0;       ///< batch wall time this run
  int threads = 0;           ///< resolved worker count
  /// taxonomy() -> count over every non-ok trial.
  std::map<std::string, long> failure_taxonomy;
};

struct EnsembleResult {
  std::vector<TrialResult> trials;  ///< index == trial number
  EnsembleSummary summary;
};

/// The runner.  Usage:
///
///   EnsembleOptions eo;
///   eo.seed = 42; eo.checkpoint_path = "yield.ckpt";
///   EnsembleRunner runner(eo);
///   auto result = runner.run(1000, [&](int /*worker*/) {
///     // Per-worker state: one bench circuit + one Newton workspace,
///     // reused across every trial this worker executes.
///     auto bench = std::make_shared<WorkerBench>(...);
///     return [bench](TrialContext& ctx) -> TrialMeasurement {
///       auto params = fab::perturb_alpha_power(nominal, var, ctx.rng);
///       bench->retarget(params);             // Fet::set_model per device
///       auto tr = transient(*bench->ckt, ctx.tuned(base_tran), {"q"});
///       return {final_q(tr), final_q(tr) < 0.1, stats};
///     };
///   });
///
/// The worker factory runs once per worker thread (it must be
/// thread-safe); exceptions it throws are configuration errors and
/// propagate out of run().  Exceptions from the *trial function* are the
/// isolated, per-trial kind described above and never escape the batch.
class EnsembleRunner {
 public:
  using TrialFn = std::function<TrialMeasurement(TrialContext&)>;
  using WorkerFactory = std::function<TrialFn(int worker)>;

  explicit EnsembleRunner(EnsembleOptions opts) : opts_(std::move(opts)) {}

  /// Run @p num_trials trials (resuming from the checkpoint when one is
  /// configured and present).  Always returns a complete result; throws
  /// only for configuration errors (bad checkpoint identity, factory
  /// failure), never for trial failures.
  EnsembleResult run(long num_trials, const WorkerFactory& make_worker) const;

  /// The retry-escalation policy: attempt 0 returns @p base unchanged;
  /// each retry enables the full convergence ladder and adds iteration /
  /// rung / pseudo-step headroom while tightening the Newton damping.
  static SolverOptions escalate_solver(const SolverOptions& base,
                                       int attempt);
  /// Transient-side escalation: finer initial/minimum step and more
  /// halving headroom per retry.
  static void escalate_transient(TransientOptions& tran, int attempt);

 private:
  struct RunOne {
    TrialResult result;
    bool terminal = true;  ///< false: batch-level stop, do not checkpoint
  };
  RunOne run_one(long index, const TrialFn& fn,
                 const phys::CancelToken& batch) const;

  EnsembleOptions opts_;
};

/// Machine-readable reports (core::Json; objects keep field order, doubles
/// round-trip via %.17g).  These are the structured siblings of
/// SolveFailure::to_string() — a yield dashboard or CI gate consumes the
/// JSON, a human reads the prose.
core::Json to_json(const SolveFailure& failure);
core::Json to_json(const NewtonStats& stats);
core::Json to_json(const TransientStats& stats);
core::Json to_json(const TrialResult& result);
core::Json to_json(const EnsembleSummary& summary);
/// Full batch report: {"summary": ..., "trials": [...]}.
core::Json to_json(const EnsembleResult& result);

}  // namespace carbon::spice
