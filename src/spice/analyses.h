#pragma once

/// @file analyses.h
/// Circuit analyses: Newton–Raphson operating point (with gmin and source
/// stepping), DC sweeps, and fixed/adaptive-step transient simulation with
/// backward-Euler and trapezoidal integration.

#include <functional>
#include <string>
#include <vector>

#include "phys/linalg.h"
#include "phys/table.h"
#include "spice/circuit.h"
#include "spice/mna.h"

namespace carbon::spice {

/// Newton solver options.
struct SolverOptions {
  int max_iterations = 120;
  double v_abstol = 1e-9;      ///< absolute voltage tolerance [V]
  double reltol = 1e-6;        ///< relative tolerance
  double v_step_limit = 0.4;   ///< max node-voltage change per NR step [V]
  double gmin_initial = 1e-3;  ///< gmin stepping start [S]
  double gmin_final = 1e-12;   ///< residual gmin kept in the Jacobian [S]
  int gmin_steps = 10;         ///< geometric gmin ladder length
  int source_steps = 10;       ///< source-stepping ladder length (fallback)

  /// Linear-solver backend.  kAuto picks dense below sparse_threshold
  /// unknowns and the sparse engine (symbolic-pattern reuse) above it;
  /// kDense/kSparse force a backend (tests, benchmarks).
  LinearBackend backend = LinearBackend::kAuto;
  /// kAuto crossover in unknowns; benchmarked on the BM_NewtonSolve family
  /// (bench/perf_kernels.cpp) — the sparse engine wins from a few dozen
  /// unknowns up on circuit-typical sparsity.
  int sparse_threshold = 48;
};

/// Converged solution plus metadata.
struct Solution {
  std::vector<double> x;  ///< node voltages then branch currents
  int iterations = 0;     ///< NR iterations of the final solve
  bool used_gmin_stepping = false;
  bool used_source_stepping = false;
};

/// Persistent Newton scratch: the assembled MNA system (Jacobian pattern,
/// slot tables, LU workspace — dense or sparse) plus the update vector,
/// built once per circuit topology and reused across iterations — and,
/// when the caller keeps the workspace alive, across the points of a sweep
/// or the steps of a transient.  After prepare() has run for a topology, a
/// Newton iteration performs no heap allocation and no symbolic
/// factorization work.
struct NewtonWorkspace {
  MnaSystem mna;
  std::vector<double> x_new;

  /// (Re)build the MNA system when the circuit topology or the requested
  /// backend changed; cheap no-op otherwise.
  void prepare(Circuit& ckt, const SolverOptions& opts);
  int size() const { return mna.size(); }
};

/// One full Newton–Raphson solve at fixed gmin / source scale, running on
/// @p ws.  Returns true on convergence; @p x is updated in place.  Exposed
/// for benchmarks and custom analysis drivers; most callers want
/// operating_point.
bool newton_solve(Circuit& ckt, std::vector<double>& x,
                  const SolverOptions& opts, double gmin, double source_scale,
                  const StampContext& proto, NewtonWorkspace& ws,
                  int* iterations);

/// DC operating point.  Throws ConvergenceError when every strategy fails.
/// @param x0  optional warm start (same layout as Solution::x)
/// @param ws  optional caller-owned workspace, reused across calls (sweep
///            drivers pass one so per-point solves allocate nothing)
Solution operating_point(Circuit& ckt, const SolverOptions& opts = {},
                         const std::vector<double>* x0 = nullptr,
                         NewtonWorkspace* ws = nullptr);

/// Voltage of a named node in a solution.
double node_voltage(const Circuit& ckt, const Solution& sol,
                    const std::string& node_name);

/// Resolve probe names to node ids once per analysis (sweep/transient/AC
/// record loops then index the solution vector directly instead of doing a
/// name lookup per point).  Throws on unknown nodes.
std::vector<NodeId> resolve_probes(const Circuit& ckt,
                                   const std::vector<std::string>& probes);

/// Current through a voltage source (positive = into its + terminal,
/// i.e. SPICE convention: current delivered *into* the source).
double vsource_current(const Circuit& ckt, const Solution& sol,
                       const VSource& src);

/// Sweep a voltage source and record node voltages.
/// Columns: sweep value, then one column per probe node.
phys::DataTable dc_sweep(Circuit& ckt, VSource& swept,
                         const std::vector<double>& values,
                         const std::vector<std::string>& probes,
                         const SolverOptions& opts = {});

/// Instrumentation of one transient run (optional; attach via
/// TransientOptions::stats).  The adaptive/fixed benchmark pair and the CI
/// smoke job compare these counters at matched waveform accuracy.
struct TransientStats {
  long steps_accepted = 0;
  long steps_rejected_lte = 0;     ///< LTE-controller rejections (adaptive)
  long steps_rejected_newton = 0;  ///< nonconvergence retries
  long newton_iterations = 0;      ///< total NR iterations, incl. rejected
  long breakpoints_hit = 0;        ///< source corners stepped onto exactly
  long jacobian_reuses = 0;        ///< factor() calls served by the
                                   ///< identical-Jacobian (Shamanskii)
                                   ///< fast path of MnaSystem
  double dt_smallest = 0.0;        ///< smallest accepted step [s]
  double dt_largest = 0.0;         ///< largest accepted step [s]
  EvalCounters evals;              ///< FET/diode eval()/bypass accounting
};

/// How the transient initializes energy-storage elements.
enum class TransientIc {
  /// Capacitors start from their construction-time v_init (the seed
  /// engine's behaviour, kept as the default): a node held high by the DC
  /// operating point but loaded by a v_init = 0 capacitor snaps toward 0
  /// on the first step.
  kFromInit,
  /// Capacitors take their initial voltage from the t = 0 operating
  /// point (standard SPICE semantics without UIC): the transient starts
  /// from a true equilibrium, which is what hold-state workloads (SRAM
  /// write, bias-settled cells) need.
  kFromOperatingPoint,
};

/// Transient options.  Two stepping modes share one surface:
///  * fixed (adaptive = false): march the dt grid exactly as the classic
///    engine did, halving only on Newton failure — the bit-stable
///    reference path;
///  * adaptive (adaptive = true): local-truncation-error controlled
///    variable steps.  dt becomes the *initial* step; each accepted step
///    estimates the corrector LTE from its divergence from a polynomial
///    predictor, grows/shrinks the step against lte_reltol/lte_abstol,
///    rejects oversized steps, and lands exactly on source-waveform
///    breakpoints (restarting the integrator there with a BE step).
struct TransientOptions {
  double t_stop = 1e-9;
  double dt = 1e-12;         ///< fixed: the grid; adaptive: initial step
  bool trapezoidal = true;   ///< trapezoidal after a BE start-up step
  int max_step_halvings = 12;

  bool adaptive = false;
  double lte_reltol = 1e-3;  ///< relative LTE tolerance per node
  double lte_abstol = 1e-6;  ///< absolute LTE tolerance [V]
  double trtol = 7.0;        ///< LTE overestimation factor (SPICE trtol)
  /// PI (Gustafsson) step control instead of the deadbeat growth rule:
  /// damps step growth while the LTE is rising, cutting the rejection
  /// thrash on fast waveforms (see LteControlConfig::pi).  Off by default
  /// to keep the seeded controller behaviour bit-stable.
  bool lte_pi = false;
  double dt_min = 0.0;       ///< 0 = auto: max(t_stop * 1e-12, dt * 1e-6)
  double dt_max = 0.0;       ///< 0 = auto: t_stop / 50

  /// Quiescent-device bypass tolerance [V] forwarded to the stamps; a FET
  /// whose terminal voltages moved less than this since its last eval()
  /// serves its cached {id, gm, gds} linearization.  0 disables.
  double bypass_vtol = 0.0;

  /// When > 0, record rows at this fixed interval (linearly interpolated
  /// from the accepted steps) instead of one row per accepted step, so
  /// adaptive runs don't explode DataTable row counts — and so runs with
  /// different stepping land on a common grid for RMS comparison.
  double dt_print = 0.0;

  TransientIc ic = TransientIc::kFromInit;
  TransientStats* stats = nullptr;  ///< optional out-param
  SolverOptions solver;
};

/// Transient run recording node voltages (and optionally source currents).
/// Columns: time_s, then one per probe node, then "i(<src>)" per tracked
/// source.
phys::DataTable transient(Circuit& ckt, const TransientOptions& opts,
                          const std::vector<std::string>& probes,
                          const std::vector<const VSource*>& current_probes = {});

}  // namespace carbon::spice
