#pragma once

/// @file analyses.h
/// Circuit analyses: Newton–Raphson operating point (with gmin and source
/// stepping), DC sweeps, and fixed/adaptive-step transient simulation with
/// backward-Euler and trapezoidal integration.

#include <functional>
#include <string>
#include <vector>

#include "phys/linalg.h"
#include "phys/table.h"
#include "spice/circuit.h"

namespace carbon::spice {

/// Newton solver options.
struct SolverOptions {
  int max_iterations = 120;
  double v_abstol = 1e-9;      ///< absolute voltage tolerance [V]
  double reltol = 1e-6;        ///< relative tolerance
  double v_step_limit = 0.4;   ///< max node-voltage change per NR step [V]
  double gmin_initial = 1e-3;  ///< gmin stepping start [S]
  double gmin_final = 1e-12;   ///< residual gmin kept in the Jacobian [S]
  int gmin_steps = 10;         ///< geometric gmin ladder length
  int source_steps = 10;       ///< source-stepping ladder length (fallback)
};

/// Converged solution plus metadata.
struct Solution {
  std::vector<double> x;  ///< node voltages then branch currents
  int iterations = 0;     ///< NR iterations of the final solve
  bool used_gmin_stepping = false;
  bool used_source_stepping = false;
};

/// Persistent Newton scratch: the Jacobian, RHS, update vector and LU
/// factorization are allocated once and reused across iterations — and,
/// when the caller keeps the workspace alive, across the points of a sweep
/// or the steps of a transient.  After resize(n) has run once for a given
/// circuit size, a Newton iteration performs no heap allocation.
struct NewtonWorkspace {
  phys::Matrix jac;
  std::vector<double> rhs;
  std::vector<double> x_new;
  phys::LuFactorization lu;

  /// Adapt the buffers to @p n unknowns (no-op when already sized).
  void resize(int n);
  int size() const { return static_cast<int>(rhs.size()); }
};

/// One full Newton–Raphson solve at fixed gmin / source scale, running on
/// @p ws.  Returns true on convergence; @p x is updated in place.  Exposed
/// for benchmarks and custom analysis drivers; most callers want
/// operating_point.
bool newton_solve(Circuit& ckt, std::vector<double>& x,
                  const SolverOptions& opts, double gmin, double source_scale,
                  const StampContext& proto, NewtonWorkspace& ws,
                  int* iterations);

/// DC operating point.  Throws ConvergenceError when every strategy fails.
/// @param x0  optional warm start (same layout as Solution::x)
/// @param ws  optional caller-owned workspace, reused across calls (sweep
///            drivers pass one so per-point solves allocate nothing)
Solution operating_point(Circuit& ckt, const SolverOptions& opts = {},
                         const std::vector<double>* x0 = nullptr,
                         NewtonWorkspace* ws = nullptr);

/// Voltage of a named node in a solution.
double node_voltage(const Circuit& ckt, const Solution& sol,
                    const std::string& node_name);

/// Current through a voltage source (positive = into its + terminal,
/// i.e. SPICE convention: current delivered *into* the source).
double vsource_current(const Circuit& ckt, const Solution& sol,
                       const VSource& src);

/// Sweep a voltage source and record node voltages.
/// Columns: sweep value, then one column per probe node.
phys::DataTable dc_sweep(Circuit& ckt, VSource& swept,
                         const std::vector<double>& values,
                         const std::vector<std::string>& probes,
                         const SolverOptions& opts = {});

/// Transient options.
struct TransientOptions {
  double t_stop = 1e-9;
  double dt = 1e-12;
  bool trapezoidal = true;   ///< trapezoidal after a BE start-up step
  int max_step_halvings = 12;
  SolverOptions solver;
};

/// Transient run recording node voltages (and optionally source currents).
/// Columns: time_s, then one per probe node, then "i(<src>)" per tracked
/// source.
phys::DataTable transient(Circuit& ckt, const TransientOptions& opts,
                          const std::vector<std::string>& probes,
                          const std::vector<const VSource*>& current_probes = {});

}  // namespace carbon::spice
