#pragma once

/// @file analyses.h
/// Circuit analyses: Newton–Raphson operating point behind a convergence
/// escalation ladder (plain NR → adaptive gmin ramp → source stepping →
/// pseudo-transient continuation), DC sweeps, and fixed/adaptive-step
/// transient simulation with backward-Euler and trapezoidal integration.
/// Failures surface as a structured SolveFailure (stage reached, worst
/// nodes by name, oscillation/singularity culprits), never as silent NaNs
/// or a bare boolean.

#include <functional>
#include <string>
#include <vector>

#include "obs/phase.h"
#include "phys/cancel.h"
#include "phys/linalg.h"
#include "phys/require.h"
#include "phys/table.h"
#include "spice/circuit.h"
#include "spice/mna.h"

namespace carbon::spice {

/// Newton solver options.
struct SolverOptions {
  int max_iterations = 120;
  double v_abstol = 1e-9;      ///< absolute voltage tolerance [V]
  double reltol = 1e-6;        ///< relative tolerance
  double v_step_limit = 0.4;   ///< max node-voltage change per NR step [V]
  double gmin_initial = 1e-3;  ///< gmin stepping start [S]
  double gmin_final = 1e-12;   ///< residual gmin kept in the Jacobian [S]
  int gmin_steps = 10;         ///< nominal gmin ladder length (sets the
                               ///< initial descent factor of the ramp)
  int source_steps = 10;       ///< nominal source-stepping ladder length
                               ///< (sets the initial scale increment)

  // --- escalation-ladder knobs (ConvergenceOrchestrator) ---
  bool allow_gmin_stepping = true;    ///< stage 2 of the ladder
  bool allow_source_stepping = true;  ///< stage 3
  bool allow_pseudo_transient = true; ///< stage 4 (fallback of last resort)
  int gmin_max_rungs = 48;     ///< total Newton solves the gmin ramp may
                               ///< spend (escalation + descent + backtracks)
  int source_max_rungs = 48;   ///< total solves of the source ramp
  double ptc_c_farad = 1e-6;   ///< pseudo-transient node capacitance [F]
  double ptc_dt_initial = 1e-4;///< first pseudo-step [s of pseudo-time]
  double ptc_dt_growth = 10.0; ///< max pseudo-step growth per accepted step
  int ptc_max_steps = 500;     ///< pseudo-step budget before giving up
  int failure_report_nodes = 5;///< worst nodes listed in a SolveFailure

  /// Linear-solver backend.  kAuto picks dense below sparse_threshold
  /// unknowns and the sparse engine (symbolic-pattern reuse) above it;
  /// kDense/kSparse force a backend (tests, benchmarks).
  LinearBackend backend = LinearBackend::kAuto;
  /// kAuto crossover in unknowns; benchmarked on the BM_NewtonSolve family
  /// (bench/perf_kernels.cpp) — the sparse engine wins from a few dozen
  /// unknowns up on circuit-typical sparsity.
  int sparse_threshold = 48;

  /// Optional cooperative stop signal, polled at every Newton iteration
  /// and every transient step.  When it fires (explicit cancel() or an
  /// armed deadline), the solve throws phys::CancelledError — which is NOT
  /// a ConvergenceError, so the escalation ladder never mistakes it for a
  /// failed homotopy rung: it unwinds straight to the caller.  A hung
  /// corner case thus degrades to a bounded, attributable stop instead of
  /// wedging the thread.  Not owned; must outlive the solve.
  const phys::CancelToken* cancel = nullptr;

  /// Optional phase-time accumulator (stamp/eval/factor/solve split, see
  /// obs/phase.h).  Null (the default) keeps the hot path free of clock
  /// reads; non-null adds a handful of steady_clock samples per Newton
  /// iteration.  Not owned; must outlive the solve.  Single-threaded:
  /// parallel trials need one accumulator per worker.
  obs::PhaseTimes* phases = nullptr;
};

/// Stage of the convergence escalation ladder.
enum class SolveStage {
  kNewton = 0,        ///< plain damped Newton from the initial point
  kGminStepping,      ///< adaptive gmin ramp with backtracking
  kSourceStepping,    ///< source-scale homotopy with adaptive increments
  kPseudoTransient,   ///< artificial-capacitor continuation (last resort)
};

/// Human-readable stage name ("newton", "gmin-stepping", ...).
const char* solve_stage_name(SolveStage stage);

/// Structured description of a convergence failure: the deepest ladder
/// stage reached, the proximate cause, and every culprit the solver could
/// attribute — the singular/NaN row by name, the worst update/tolerance
/// nodes of the last Newton attempt, and nodes whose updates kept flipping
/// sign (the limit-cycle signature of metastable decks).  Earlier stages'
/// attributions are kept when a later stage has nothing better (a floating
/// node names itself in stage 1; pseudo-transient only reports "stalled").
struct SolveFailure {
  enum class Cause {
    kMaxIterations,  ///< Newton ran out of iterations
    kSingular,       ///< Jacobian numerically singular
    kNonFinite,      ///< NaN/Inf from a device model or in the system
    kStalled,        ///< a homotopy ramp could no longer advance
  };

  SolveStage stage = SolveStage::kNewton;  ///< deepest stage attempted
  Cause cause = Cause::kMaxIterations;
  int bad_row = -1;      ///< unknown index of the singular/NaN row (-1 n/a)
  std::string culprit;   ///< named culprit: node, branch or device
  struct NodeResidual {
    std::string node;    ///< node name
    double ratio;        ///< |update| / tolerance at the last iteration
  };
  std::vector<NodeResidual> worst_nodes;      ///< sorted, worst first
  std::vector<std::string> oscillating_nodes; ///< sign-flip suspects

  /// One-line report naming stage, cause and every attribution above.
  std::string to_string() const;
};

/// Thrown by operating_point (and transient recovery) when the whole
/// escalation ladder fails; carries the structured SolveFailure.
class SolveFailureError : public phys::ConvergenceError {
 public:
  explicit SolveFailureError(SolveFailure failure);
  const SolveFailure& failure() const { return failure_; }

 private:
  SolveFailure failure_;
};

/// How an operating point was won: the stage that converged and the work
/// each ladder stage performed.
struct NewtonStats {
  SolveStage stage = SolveStage::kNewton;  ///< stage that converged
  int iterations = 0;        ///< NR iterations of the final solve
  int gmin_rungs = 0;        ///< gmin-ramp Newton solves
  int gmin_backtracks = 0;   ///< gmin rungs that failed and backed off
  int source_rungs = 0;      ///< source-ramp Newton solves
  int source_backtracks = 0; ///< source rungs that failed and backed off
  long ptc_steps = 0;        ///< accepted pseudo-transient steps
  long ptc_rejections = 0;   ///< pseudo-steps rejected (Newton failure)
  bool used_gmin_stepping = false;
  bool used_source_stepping = false;
  bool used_pseudo_transient = false;
};

/// Converged solution plus metadata.
struct Solution {
  std::vector<double> x;  ///< node voltages then branch currents
  int iterations = 0;     ///< NR iterations of the final solve
  NewtonStats stats;      ///< ladder accounting (stage, rungs, PTC steps)
  bool used_gmin_stepping = false;
  bool used_source_stepping = false;
};

/// Per-solve diagnostics newton_solve fills when given a non-null pointer:
/// why the solve stopped, the factor-failure culprit, per-unknown update
/// ratios of the last iteration and per-node update sign-flip counts (the
/// oscillation detector).  Tracking costs one extra O(n) pass per
/// iteration and only runs when requested.
struct NewtonDiag {
  enum class Reason {
    kConverged = 0,
    kMaxIterations,
    kSingular,    ///< factor() failed on a collapsed pivot
    kNonFinite,   ///< device eval or system values went NaN/Inf
  };
  Reason reason = Reason::kConverged;
  int iterations = 0;
  int bad_row = -1;          ///< factor-failure row (unknown index)
  std::string culprit;       ///< device name for NonFiniteEvalError
  double worst_ratio = 0.0;  ///< worst |update|/tolerance, last iteration
  std::vector<double> update_ratio;  ///< per-unknown, last iteration
  std::vector<int> sign_flips;       ///< per-node update sign flips
};

/// Persistent Newton scratch: the assembled MNA system (Jacobian pattern,
/// slot tables, LU workspace — dense or sparse) plus the update vector,
/// built once per circuit topology and reused across iterations — and,
/// when the caller keeps the workspace alive, across the points of a sweep
/// or the steps of a transient.  After prepare() has run for a topology, a
/// Newton iteration performs no heap allocation and no symbolic
/// factorization work.
struct NewtonWorkspace {
  MnaSystem mna;
  std::vector<double> x_new;

  /// (Re)build the MNA system when the circuit topology or the requested
  /// backend changed; cheap no-op otherwise.
  void prepare(Circuit& ckt, const SolverOptions& opts);
  int size() const { return mna.size(); }
};

/// One full Newton–Raphson solve at fixed gmin / source scale, running on
/// @p ws.  Returns true on convergence; @p x is updated in place.  Exposed
/// for benchmarks and custom analysis drivers; most callers want
/// operating_point.
///
/// @param diag     optional failure diagnostics (see NewtonDiag)
/// @param ptc_geq  when > 0, an artificial conductance added from every
///                 node to ground together with the history current
///                 ptc_geq * (*ptc_ref)[i] — the pseudo-transient
///                 continuation stamp (geq = C/dt, ref = previous
///                 pseudo-step state)
bool newton_solve(Circuit& ckt, std::vector<double>& x,
                  const SolverOptions& opts, double gmin, double source_scale,
                  const StampContext& proto, NewtonWorkspace& ws,
                  int* iterations, NewtonDiag* diag = nullptr,
                  double ptc_geq = 0.0,
                  const std::vector<double>* ptc_ref = nullptr);

/// The convergence escalation ladder: plain Newton, then (as allowed by
/// SolverOptions) an adaptive gmin ramp with backtracking, source stepping
/// with adaptive increments, and pseudo-transient continuation as the
/// fallback of last resort.  operating_point runs it for the DC solve and
/// the transient engine re-enters it when Newton collapses at dt_min.
///
/// Failure reporting accumulates across stages: the ladder remembers the
/// most informative attribution (singular row, NaN device, oscillating
/// nodes) seen anywhere and throws one SolveFailureError describing the
/// deepest stage reached.
class ConvergenceOrchestrator {
 public:
  ConvergenceOrchestrator(Circuit& ckt, const SolverOptions& opts,
                          NewtonWorkspace& ws);

  /// Run the ladder from @p x (updated in place on success).  @p proto
  /// carries the stamp-context template (DC for operating_point; the
  /// failed step's transient context for dt_min recovery).  Returns the
  /// ladder accounting on success; throws SolveFailureError on failure.
  NewtonStats solve(std::vector<double>& x, const StampContext& proto);

 private:
  bool run_newton(std::vector<double>& x, const StampContext& proto,
                  double gmin, double source_scale, double ptc_geq = 0.0,
                  const std::vector<double>* ptc_ref = nullptr);
  bool gmin_ramp(std::vector<double>& x, const StampContext& proto);
  bool source_ramp(std::vector<double>& x, const StampContext& proto);
  bool pseudo_transient(std::vector<double>& x, const StampContext& proto);
  void merge_failure(SolveStage stage, SolveFailure::Cause ladder_cause);
  [[noreturn]] void fail();

  Circuit& ckt_;
  const SolverOptions& opts_;
  NewtonWorkspace& ws_;
  NewtonStats stats_;
  NewtonDiag diag_;       ///< diagnostics of the most recent Newton solve
  SolveFailure report_;   ///< accumulated failure description
};

/// DC operating point via the escalation ladder.  Throws SolveFailureError
/// (a ConvergenceError carrying the structured SolveFailure) when every
/// enabled stage fails.
/// @param x0  optional warm start (same layout as Solution::x)
/// @param ws  optional caller-owned workspace, reused across calls (sweep
///            drivers pass one so per-point solves allocate nothing)
Solution operating_point(Circuit& ckt, const SolverOptions& opts = {},
                         const std::vector<double>* x0 = nullptr,
                         NewtonWorkspace* ws = nullptr);

/// Voltage of a named node in a solution.
double node_voltage(const Circuit& ckt, const Solution& sol,
                    const std::string& node_name);

/// Resolve probe names to node ids once per analysis (sweep/transient/AC
/// record loops then index the solution vector directly instead of doing a
/// name lookup per point).  Throws on unknown nodes.
std::vector<NodeId> resolve_probes(const Circuit& ckt,
                                   const std::vector<std::string>& probes);

/// Current through a voltage source (positive = into its + terminal,
/// i.e. SPICE convention: current delivered *into* the source).
double vsource_current(const Circuit& ckt, const Solution& sol,
                       const VSource& src);

/// Sweep a voltage source and record node voltages.
/// Columns: sweep value, then one column per probe node.
/// @param ws  optional caller-owned workspace (see operating_point); a
///            session running many sweeps on one topology passes the same
///            one so the pattern/symbolic work is done once, not per sweep.
phys::DataTable dc_sweep(Circuit& ckt, VSource& swept,
                         const std::vector<double>& values,
                         const std::vector<std::string>& probes,
                         const SolverOptions& opts = {},
                         NewtonWorkspace* ws = nullptr);

/// Instrumentation of one transient run (optional; attach via
/// TransientOptions::stats).  The adaptive/fixed benchmark pair and the CI
/// smoke job compare these counters at matched waveform accuracy.
struct TransientStats {
  long steps_accepted = 0;
  long steps_rejected_lte = 0;     ///< LTE-controller rejections (adaptive)
  long steps_rejected_newton = 0;  ///< nonconvergence retries
  long newton_iterations = 0;      ///< total NR iterations, incl. rejected
  long breakpoints_hit = 0;        ///< source corners stepped onto exactly
  long jacobian_reuses = 0;        ///< factor() calls served by the
                                   ///< identical-Jacobian (Shamanskii)
                                   ///< fast path of MnaSystem
  double dt_smallest = 0.0;        ///< smallest accepted step [s]
  double dt_largest = 0.0;         ///< largest accepted step [s]
  EvalCounters evals;              ///< FET/diode eval()/bypass accounting
  NewtonStats op;                  ///< initial operating-point ladder stats
  long orchestrator_recoveries = 0;///< dt_min Newton collapses recovered by
                                   ///< re-entering the escalation ladder
};

/// How the transient initializes energy-storage elements.
enum class TransientIc {
  /// Capacitors start from their construction-time v_init (the seed
  /// engine's behaviour, kept as the default): a node held high by the DC
  /// operating point but loaded by a v_init = 0 capacitor snaps toward 0
  /// on the first step.
  kFromInit,
  /// Capacitors take their initial voltage from the t = 0 operating
  /// point (standard SPICE semantics without UIC): the transient starts
  /// from a true equilibrium, which is what hold-state workloads (SRAM
  /// write, bias-settled cells) need.
  kFromOperatingPoint,
};

/// Transient options.  Two stepping modes share one surface:
///  * fixed (adaptive = false): march the dt grid exactly as the classic
///    engine did, halving only on Newton failure — the bit-stable
///    reference path;
///  * adaptive (adaptive = true): local-truncation-error controlled
///    variable steps.  dt becomes the *initial* step; each accepted step
///    estimates the corrector LTE from its divergence from a polynomial
///    predictor, grows/shrinks the step against lte_reltol/lte_abstol,
///    rejects oversized steps, and lands exactly on source-waveform
///    breakpoints (restarting the integrator there with a BE step).
struct TransientOptions {
  double t_stop = 1e-9;
  double dt = 1e-12;         ///< fixed: the grid; adaptive: initial step
  bool trapezoidal = true;   ///< trapezoidal after a BE start-up step
  int max_step_halvings = 12;

  bool adaptive = false;
  double lte_reltol = 1e-3;  ///< relative LTE tolerance per node
  double lte_abstol = 1e-6;  ///< absolute LTE tolerance [V]
  double trtol = 7.0;        ///< LTE overestimation factor (SPICE trtol)
  /// PI (Gustafsson) step control instead of the deadbeat growth rule:
  /// damps step growth while the LTE is rising, cutting the rejection
  /// thrash on fast waveforms (see LteControlConfig::pi).  Off by default
  /// to keep the seeded controller behaviour bit-stable.
  bool lte_pi = false;
  double dt_min = 0.0;       ///< 0 = auto: max(t_stop * 1e-12, dt * 1e-6)
  double dt_max = 0.0;       ///< 0 = auto: t_stop / 50

  /// Quiescent-device bypass tolerance [V] forwarded to the stamps; a FET
  /// whose terminal voltages moved less than this since its last eval()
  /// serves its cached {id, gm, gds} linearization.  0 disables.
  double bypass_vtol = 0.0;

  /// When > 0, record rows at this fixed interval (linearly interpolated
  /// from the accepted steps) instead of one row per accepted step, so
  /// adaptive runs don't explode DataTable row counts — and so runs with
  /// different stepping land on a common grid for RMS comparison.
  double dt_print = 0.0;

  TransientIc ic = TransientIc::kFromInit;
  TransientStats* stats = nullptr;  ///< optional out-param
  SolverOptions solver;

  /// Optional caller-owned Newton workspace.  An ensemble worker that
  /// re-runs one topology under many perturbed device models passes the
  /// same workspace every trial, so the matrix pattern, slot tables and
  /// (sparse backend) the symbolic factorization are built once per worker
  /// instead of once per trial.  Null = per-call workspace, as before.
  NewtonWorkspace* workspace = nullptr;
};

/// Transient run recording node voltages (and optionally source currents).
/// Columns: time_s, then one per probe node, then "i(<src>)" per tracked
/// source.
phys::DataTable transient(Circuit& ckt, const TransientOptions& opts,
                          const std::vector<std::string>& probes,
                          const std::vector<const VSource*>& current_probes = {});

}  // namespace carbon::spice
