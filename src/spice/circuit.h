#pragma once

/// @file circuit.h
/// The netlist container: named nodes plus an ordered list of elements.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/elements.h"

namespace carbon::spice {

/// A circuit netlist.  Nodes are created on demand by name; "0" (or "gnd")
/// is ground.  Element adder methods return a pointer that stays valid for
/// the life of the circuit (for sweeps that need to retune a source).
class Circuit {
 public:
  Circuit();

  /// Get-or-create a node by name.  "0" and "gnd" map to ground.
  NodeId node(const std::string& name);
  /// Look up an existing node (throws if absent).
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;
  /// Number of non-ground nodes.
  int num_nodes() const { return static_cast<int>(names_.size()) - 1; }
  /// Total MNA unknowns: node voltages + source branch currents.
  int num_unknowns() const { return num_nodes() + num_branches_; }
  int num_branches() const { return num_branches_; }

  Resistor* add_resistor(const std::string& name, const std::string& n1,
                         const std::string& n2, double ohms);
  Capacitor* add_capacitor(const std::string& name, const std::string& n1,
                           const std::string& n2, double farad,
                           double v_init = 0.0);
  VSource* add_vsource(const std::string& name, const std::string& n_plus,
                       const std::string& n_minus, WaveformPtr wave);
  VSource* add_vsource(const std::string& name, const std::string& n_plus,
                       const std::string& n_minus, double dc_value);
  ISource* add_isource(const std::string& name, const std::string& n_plus,
                       const std::string& n_minus, WaveformPtr wave);
  Diode* add_diode(const std::string& name, const std::string& anode,
                   const std::string& cathode, double i_sat_a,
                   double ideality = 1.0);
  Fet* add_fet(const std::string& name, const std::string& drain,
               const std::string& gate, const std::string& source,
               device::DeviceModelPtr model, double multiplier = 1.0);

  const std::vector<std::unique_ptr<Element>>& elements() const {
    return elements_;
  }
  /// Reset all element dynamic state (capacitor history etc.).
  void reset_state();

  /// Source-waveform discontinuity times in (0, t_stop), sorted and
  /// deduplicated.  The adaptive transient engine steps exactly onto each
  /// so the LTE controller never straddles a corner.
  std::vector<double> collect_breakpoints(double t_stop) const;

  /// Assign branch-current rows to the sources.  The analyses call this
  /// before assembling; it must run after the netlist is complete.
  void assign_branches();

  /// Branch-current row (1-based MNA index) of a voltage source; valid
  /// after assign_branches().
  int vsource_branch_index(const VSource& src) const;

  /// Process-unique identity of this circuit instance.  Distinguishes
  /// circuits even when one is destroyed and another is constructed at the
  /// same address (workspaces cache per-circuit state across calls).
  std::uint64_t uid() const { return uid_; }

  /// Monotonic topology counter, bumped whenever an element (and possibly
  /// nodes) is added.  Solver workspaces key their cached matrix pattern
  /// and slot tables on (uid, revision).
  std::uint64_t revision() const { return revision_; }

 private:
  template <typename T, typename... Args>
  T* add_element(Args&&... args);

  // Hash registry: netlist construction and probe lookups stay O(1) even
  // for generated circuits with thousands of named nodes.
  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<std::string> names_;  // index = NodeId
  std::vector<std::unique_ptr<Element>> elements_;
  int num_branches_ = 0;
  std::uint64_t uid_ = 0;
  std::uint64_t revision_ = 0;
};

}  // namespace carbon::spice
