#pragma once

/// @file ac.h
/// Small-signal AC analysis: linearize the circuit at its DC operating
/// point and solve the complex MNA system across a frequency sweep.  This
/// backs the RF discussion of the paper's Section II (gain roll-off, poles,
/// the fmax collapse of non-saturating devices).
///
/// Since PR 5 the sweep runs on spice::AcSystem (smallsignal.h): one
/// value-capture pass per sweep, a complex sparse LU whose symbolic
/// analysis is amortized across every frequency point, and dense/sparse
/// auto-selection through AcOptions::dc.backend / sparse_threshold —
/// mirroring the Newton engine.  The companion noise analysis lives in
/// smallsignal.h as well.

#include <string>
#include <vector>

#include "phys/table.h"
#include "spice/analyses.h"
#include "spice/circuit.h"

namespace carbon::spice {

class AcSystem;

/// Options of an AC sweep.
struct AcOptions {
  double f_start_hz = 1e3;
  double f_stop_hz = 1e12;
  int points_per_decade = 10;
  SolverOptions dc;  ///< operating-point solver options

  /// Optional caller-owned reuse state (deck sessions): the Newton
  /// workspace backs the operating-point solve, the AcSystem keeps its
  /// captured footprint + complex symbolic analysis across sweeps of one
  /// topology.  Null = per-call locals, as before.  Not owned.
  NewtonWorkspace* workspace = nullptr;
  AcSystem* system = nullptr;
};

/// Run an AC sweep with @p input as the unit-magnitude stimulus.
/// Columns: freq_hz, then |v(<probe>)| and phase_deg(<probe>) per probe.
/// The stimulus magnitude of every other source is left untouched (they
/// are AC-grounded unless set_ac_magnitude was called).
phys::DataTable ac_sweep(Circuit& ckt, VSource& input,
                         const std::vector<std::string>& probes,
                         const AcOptions& opt = {});

/// -3 dB frequency of a probe column relative to its lowest-frequency
/// magnitude; negative if it never drops below the corner.
double corner_frequency(const phys::DataTable& ac,
                        const std::string& mag_column);

}  // namespace carbon::spice
