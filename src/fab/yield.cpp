#include "fab/yield.h"

#include <cmath>

#include "phys/require.h"
#include "phys/roots.h"

namespace carbon::fab {

double gate_yield(double metallic_fraction, int tubes_per_device,
                  int fets_per_gate, double open_probability) {
  CARBON_REQUIRE(metallic_fraction >= 0.0 && metallic_fraction <= 1.0,
                 "metallic fraction outside [0,1]");
  CARBON_REQUIRE(tubes_per_device >= 1, "need at least one tube per device");
  CARBON_REQUIRE(fets_per_gate >= 1, "need at least one FET per gate");
  CARBON_REQUIRE(open_probability >= 0.0 && open_probability < 1.0,
                 "open probability outside [0,1)");
  // A device works when none of its tubes is metallic and it is not open.
  const double p_device =
      std::pow(1.0 - metallic_fraction, tubes_per_device) *
      (1.0 - open_probability);
  return std::pow(p_device, fets_per_gate);
}

double circuit_yield(double gate_yield_1, long long num_gates) {
  CARBON_REQUIRE(gate_yield_1 >= 0.0 && gate_yield_1 <= 1.0,
                 "gate yield outside [0,1]");
  CARBON_REQUIRE(num_gates >= 1, "need at least one gate");
  // Work in logs: yields of large circuits underflow otherwise.
  const double log_y = static_cast<double>(num_gates) * std::log(
                           std::max(gate_yield_1, 1e-300));
  return std::exp(log_y);
}

double required_metallic_fraction(long long num_gates, int tubes_per_device,
                                  int fets_per_gate, double target_yield,
                                  double open_probability) {
  CARBON_REQUIRE(target_yield > 0.0 && target_yield < 1.0,
                 "target yield must be in (0,1)");
  // circuit_yield = [(1-m)^k (1-po)]^(f N) = Y
  // => (1-m)^k (1-po) = Y^(1/(f N))
  const double per_device =
      std::pow(target_yield,
               1.0 / (static_cast<double>(num_gates) * fets_per_gate));
  const double tube_term = per_device / (1.0 - open_probability);
  if (tube_term >= 1.0) return 0.0;  // impossible even with perfect purity
  const double one_minus_m = std::pow(tube_term, 1.0 / tubes_per_device);
  return 1.0 - one_minus_m;
}

phys::DataTable purity_requirement_table(
    const std::vector<long long>& gate_counts, int tubes_per_device,
    int fets_per_gate, double target_yield) {
  phys::DataTable t(
      {"num_gates", "required_semi_purity_pct", "required_metallic_ppm"});
  for (long long n : gate_counts) {
    const double m = required_metallic_fraction(n, tubes_per_device,
                                                fets_per_gate, target_yield);
    t.add_row({static_cast<double>(n), (1.0 - m) * 100.0, m * 1e6});
  }
  return t;
}

}  // namespace carbon::fab
