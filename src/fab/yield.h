#pragma once

/// @file yield.h
/// Circuit- and wafer-level yield projection: the arithmetic behind the
/// paper's warning that "without such a high yield wafer-scale integration,
/// SWCNT circuits will be an illusional dream."  A single bridging metallic
/// tube shorts a gate; the required semiconducting purity therefore grows
/// brutally with circuit size.

#include "phys/table.h"

namespace carbon::fab {

/// Probability that one logic gate works.
/// @param metallic_fraction  fraction of placed tubes that are metallic
/// @param tubes_per_device   bridging tubes per transistor
/// @param fets_per_gate      transistors in the gate (CMOS NAND2: 4)
/// @param open_probability   chance a device ends up with zero tubes
double gate_yield(double metallic_fraction, int tubes_per_device,
                  int fets_per_gate, double open_probability = 0.0);

/// Yield of an N-gate circuit (independent gate failures).
double circuit_yield(double gate_yield_1, long long num_gates);

/// Metallic purity (fraction) required for a target circuit yield.
/// Solves gate_yield^N = target for the metallic fraction.
double required_metallic_fraction(long long num_gates, int tubes_per_device,
                                  int fets_per_gate, double target_yield,
                                  double open_probability = 0.0);

/// Sweep table: circuit sizes vs required purity.
/// Columns: num_gates, required_semi_purity_pct, required_metallic_ppm.
phys::DataTable purity_requirement_table(
    const std::vector<long long>& gate_counts, int tubes_per_device,
    int fets_per_gate, double target_yield);

}  // namespace carbon::fab
