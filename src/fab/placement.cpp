#include "fab/placement.h"

#include <cmath>

#include "phys/parallel.h"
#include "phys/require.h"

namespace carbon::fab {

int DeviceSite::bridging_count() const {
  int n = 0;
  for (const auto& t : tubes) n += t.bridges_channel ? 1 : 0;
  return n;
}

int DeviceSite::metallic_count() const {
  int n = 0;
  for (const auto& t : tubes) {
    if (t.bridges_channel && t.chirality.is_metallic()) ++n;
  }
  return n;
}

DeviceSite QuartzGrowthModel::sample_site(const ChiralityPopulation& pop,
                                          double width_um,
                                          phys::Rng& rng) const {
  DeviceSite site;
  const int n_tubes = rng.poisson(tubes_per_um * width_um);
  for (int t = 0; t < n_tubes; ++t) {
    PlacedTube tube;
    tube.chirality = pop.sample(rng);
    // Electrical burn-off removes most metallic tubes post growth.
    if (tube.chirality.is_metallic() && rng.bernoulli(metallic_burnoff)) {
      continue;
    }
    tube.misalignment_deg = rng.normal(0.0, alignment_sigma_deg);
    tube.bridges_channel =
        std::abs(tube.misalignment_deg) <= max_usable_angle_deg;
    site.tubes.push_back(tube);
  }
  return site;
}

std::vector<DeviceSite> QuartzGrowthModel::run(const ChiralityPopulation& pop,
                                               int n_sites, double width_um,
                                               phys::Rng& rng) const {
  CARBON_REQUIRE(n_sites > 0, "need at least one site");
  CARBON_REQUIRE(width_um > 0.0, "width must be positive");
  std::vector<DeviceSite> sites;
  sites.reserve(n_sites);
  for (int i = 0; i < n_sites; ++i) {
    sites.push_back(sample_site(pop, width_um, rng));
  }
  return sites;
}

std::vector<DeviceSite> QuartzGrowthModel::run_parallel(
    const ChiralityPopulation& pop, int n_sites, double width_um,
    std::uint64_t seed, int num_threads) const {
  CARBON_REQUIRE(n_sites > 0, "need at least one site");
  CARBON_REQUIRE(width_um > 0.0, "width must be positive");
  std::vector<DeviceSite> sites(n_sites);
  phys::parallel_for_seeded(n_sites, seed,
                            [&](long begin, long end, phys::Rng& rng) {
                              for (long i = begin; i < end; ++i) {
                                sites[i] = sample_site(pop, width_um, rng);
                              }
                            },
                            num_threads);
  return sites;
}

DeviceSite TrenchAssemblyModel::sample_site(const ChiralityPopulation& pop,
                                            phys::Rng& rng) const {
  DeviceSite site;
  int n_tubes = rng.bernoulli(fill_probability) ? 1 : 0;
  n_tubes += rng.poisson(mean_extra_tubes);
  for (int t = 0; t < n_tubes; ++t) {
    PlacedTube tube;
    tube.chirality = pop.sample(rng);
    tube.misalignment_deg = rng.normal(0.0, alignment_sigma_deg);
    tube.bridges_channel =
        std::abs(tube.misalignment_deg) <= max_usable_angle_deg;
    site.tubes.push_back(tube);
  }
  return site;
}

std::vector<DeviceSite> TrenchAssemblyModel::run(
    const ChiralityPopulation& pop, int n_sites, phys::Rng& rng) const {
  CARBON_REQUIRE(n_sites > 0, "need at least one site");
  std::vector<DeviceSite> sites;
  sites.reserve(n_sites);
  for (int i = 0; i < n_sites; ++i) {
    sites.push_back(sample_site(pop, rng));
  }
  return sites;
}

std::vector<DeviceSite> TrenchAssemblyModel::run_parallel(
    const ChiralityPopulation& pop, int n_sites, std::uint64_t seed,
    int num_threads) const {
  CARBON_REQUIRE(n_sites > 0, "need at least one site");
  std::vector<DeviceSite> sites(n_sites);
  phys::parallel_for_seeded(n_sites, seed,
                            [&](long begin, long end, phys::Rng& rng) {
                              for (long i = begin; i < end; ++i) {
                                sites[i] = sample_site(pop, rng);
                              }
                            },
                            num_threads);
  return sites;
}

}  // namespace carbon::fab
