#include "fab/devstats.h"

#include <algorithm>
#include <cmath>

#include "phys/parallel.h"
#include "phys/require.h"

namespace carbon::fab {

namespace {

MeasuredDevice measure_one(const DeviceSite& site,
                           const MeasurementModel& model, phys::Rng& rng) {
  MeasuredDevice d;
  for (const auto& tube : site.tubes) {
    if (!tube.bridges_channel) continue;
    ++d.tubes;
    const double spread = std::exp(rng.normal(0.0, model.sigma_ln));
    if (tube.chirality.is_metallic()) {
      ++d.metallic_tubes;
      const double i_m = model.metallic_current * spread;
      d.ion_a += i_m;
      d.ioff_a += i_m;  // no gate control: conducts in the off state too
    } else {
      d.ion_a += model.ion_semi_mean * spread;
      d.ioff_a += model.ioff_semi_mean * spread;
    }
  }
  d.on_off = (d.ioff_a > 0.0) ? d.ion_a / d.ioff_a : 0.0;
  d.functional = d.tubes > 0 && d.on_off >= model.min_on_off &&
                 d.ion_a >= model.min_ion_a;
  return d;
}

}  // namespace

std::vector<MeasuredDevice> measure_sites(const std::vector<DeviceSite>& sites,
                                          const MeasurementModel& model,
                                          phys::Rng& rng) {
  std::vector<MeasuredDevice> out;
  out.reserve(sites.size());
  for (const auto& site : sites) {
    out.push_back(measure_one(site, model, rng));
  }
  return out;
}

std::vector<MeasuredDevice> measure_sites_parallel(
    const std::vector<DeviceSite>& sites, const MeasurementModel& model,
    std::uint64_t seed, int num_threads) {
  std::vector<MeasuredDevice> out(sites.size());
  phys::parallel_for_seeded(static_cast<long>(sites.size()), seed,
                            [&](long begin, long end, phys::Rng& rng) {
                              for (long i = begin; i < end; ++i) {
                                out[i] = measure_one(sites[i], model, rng);
                              }
                            },
                            num_threads);
  return out;
}

PopulationStats summarize(const std::vector<MeasuredDevice>& devices) {
  PopulationStats s;
  s.devices = static_cast<int>(devices.size());
  if (devices.empty()) return s;
  std::vector<double> onoff, ion;
  double tubes = 0.0;
  int shorts = 0;
  for (const auto& d : devices) {
    if (d.functional) ++s.functional;
    if (d.tubes > 0) {
      onoff.push_back(d.on_off);
      ion.push_back(d.ion_a);
    }
    tubes += d.tubes;
    shorts += (d.metallic_tubes > 0) ? 1 : 0;
  }
  s.yield = static_cast<double>(s.functional) / s.devices;
  if (!onoff.empty()) {
    s.median_on_off = phys::median(onoff);
    s.median_ion_a = phys::median(ion);
  }
  s.mean_tubes = tubes / s.devices;
  s.short_fraction = static_cast<double>(shorts) / s.devices;
  return s;
}

device::AlphaPowerParams perturb_alpha_power(
    const device::AlphaPowerParams& nominal, const DeviceVariation& var,
    phys::Rng& rng) {
  device::AlphaPowerParams p = nominal;
  // Fixed draw order — part of the determinism contract in the header.
  p.v_t += rng.normal(0.0, var.sigma_vt_v);
  p.k_sat *= std::exp(rng.normal(0.0, var.sigma_ln_drive));
  p.i_off_floor *= std::exp(rng.normal(0.0, var.sigma_ln_leak));
  p.ss_mv_dec = std::max(60.0, p.ss_mv_dec +
                                   rng.normal(0.0, var.sigma_ss_mv_dec));
  return p;
}

phys::DataTable on_off_histogram(const std::vector<MeasuredDevice>& devices,
                                 int bins) {
  CARBON_REQUIRE(bins >= 1, "need at least one bin");
  phys::Histogram h(0.0, 8.0, bins);
  for (const auto& d : devices) {
    if (d.tubes > 0 && d.on_off > 0.0) h.add(std::log10(d.on_off));
  }
  phys::DataTable t({"log10_onoff", "fraction"});
  for (int i = 0; i < h.bins(); ++i) {
    t.add_row({h.bin_center(i), h.bin_fraction(i)});
  }
  return t;
}

}  // namespace carbon::fab
