#pragma once

/// @file sorting.h
/// Solution-phase purification (Section V, second approach): "large-scale
/// single-chirality separation of single-wall carbon nanotubes by gel
/// chromatography, density gradient or DNA methods".  Each process is an
/// enrichment operator on a chirality population with a per-pass yield.

#include <string>
#include <vector>

#include "fab/chirality.h"

namespace carbon::fab {

/// One purification pass.
struct SortingProcess {
  std::string name;
  /// Survival probability of a semiconducting tube per pass.
  double semiconducting_retention = 0.9;
  /// Survival probability of a metallic tube per pass (< retention above).
  double metallic_retention = 0.01;
  /// Mass yield penalty per pass (material lost regardless of type).
  double mass_yield = 0.7;
};

/// Canned processes with representative literature selectivities.
SortingProcess gel_chromatography();
SortingProcess density_gradient();
SortingProcess dna_sorting();

/// Result of applying a sequence of passes.
struct SortingResult {
  double semiconducting_purity = 0.0;  ///< fraction of surviving tubes
  double metallic_ppm = 0.0;           ///< metallic contamination in ppm
  double overall_mass_yield = 0.0;     ///< surviving mass fraction
  int passes = 0;
};

/// Apply @p passes rounds of @p process to a population with starting
/// metallic fraction @p metallic_fraction_0.
SortingResult apply_sorting(const SortingProcess& process, int passes,
                            double metallic_fraction_0 = 1.0 / 3.0);

/// Number of passes needed to reach at most @p target_metallic_ppm, and the
/// mass yield paid for it.  Returns passes = -1 when 200 passes do not
/// suffice (process selectivity too weak).
SortingResult passes_for_purity(const SortingProcess& process,
                                double target_metallic_ppm,
                                double metallic_fraction_0 = 1.0 / 3.0);

/// Enrichment applied directly to a ChiralityPopulation object.
void apply_to_population(const SortingProcess& process, int passes,
                         ChiralityPopulation& population);

}  // namespace carbon::fab
