#pragma once

/// @file devstats.h
/// Statistical device characterization of placed CNT populations: build a
/// FET at every placement site and measure it, reproducing the >10,000
/// device study of H. Park et al. (ref [22]) that the paper highlights as
/// the first statistics at that scale.

#include <vector>

#include "device/alpha_power.h"
#include "fab/placement.h"
#include "phys/stats.h"
#include "phys/table.h"

namespace carbon::fab {

/// Measured figures of one fabricated device site.
struct MeasuredDevice {
  int tubes = 0;            ///< bridging tubes
  int metallic_tubes = 0;   ///< bridging metallic tubes
  double ion_a = 0.0;       ///< on-current
  double ioff_a = 0.0;      ///< off-current
  double on_off = 0.0;      ///< Ion/Ioff
  bool functional = false;  ///< meets the on/off and drive specs
};

/// Electrical assumptions of the statistical study.
struct MeasurementModel {
  double vdd = 0.5;
  /// Per-tube semiconducting on/off currents [A] (means).
  double ion_semi_mean = 5e-6;
  double ioff_semi_mean = 50e-12;
  /// Log-normal spread (sigma of ln I) from diameter/contact variation.
  double sigma_ln = 0.35;
  /// A metallic tube conducts this much regardless of gate [A].
  double metallic_current = 15e-6;
  /// Functional spec.
  double min_on_off = 1e3;
  double min_ion_a = 1e-6;
};

/// Measure every site.
std::vector<MeasuredDevice> measure_sites(const std::vector<DeviceSite>& sites,
                                          const MeasurementModel& model,
                                          phys::Rng& rng);

/// Parallel measurement: fixed chunks of devices each draw their variation
/// from their own RNG stream (phys::parallel_for_seeded), so the statistics
/// are bit-for-bit identical for any thread count (num_threads 0 = default
/// pool).
std::vector<MeasuredDevice> measure_sites_parallel(
    const std::vector<DeviceSite>& sites, const MeasurementModel& model,
    std::uint64_t seed, int num_threads = 0);

/// Aggregate statistics of a measured population.
struct PopulationStats {
  int devices = 0;
  int functional = 0;
  double yield = 0.0;
  double median_on_off = 0.0;
  double median_ion_a = 0.0;
  double mean_tubes = 0.0;
  double short_fraction = 0.0;  ///< devices containing a metallic tube
};
PopulationStats summarize(const std::vector<MeasuredDevice>& devices);

/// Histogram table of log10(on/off). Columns: log10_onoff, fraction.
phys::DataTable on_off_histogram(const std::vector<MeasuredDevice>& devices,
                                 int bins = 24);

/// Fab-variation spread applied to a nominal compact model — the
/// circuit-level counterpart of MeasurementModel: instead of perturbing
/// per-tube currents, it perturbs the transistor parameters a SPICE trial
/// solves with.  Drive strength and leakage use the same log-normal form
/// (sigma of ln I) the statistical study calibrates from diameter/contact
/// variation; the threshold shift is Gaussian.
struct DeviceVariation {
  double sigma_vt_v = 0.03;       ///< threshold-voltage spread [V]
  double sigma_ln_drive = 0.15;   ///< log-normal drive (k_sat) spread
  double sigma_ln_leak = 0.5;     ///< log-normal leakage-floor spread
  double sigma_ss_mv_dec = 4.0;   ///< subthreshold-swing spread [mV/dec]
};

/// Draw one perturbed alpha-power parameter set.  Consumes exactly four
/// normal variates from @p rng in a fixed order, so per-trial RNG streams
/// (phys::stream_seed) give bit-identical devices for any thread count.
device::AlphaPowerParams perturb_alpha_power(
    const device::AlphaPowerParams& nominal, const DeviceVariation& var,
    phys::Rng& rng);

}  // namespace carbon::fab
