#pragma once

/// @file chirality.h
/// Chirality populations of as-grown CNT material.  "CNTs can come in
/// different flavors and can be semiconducting, metallic, semi-metallic and
/// it is currently unproven whether pure batches of one sort could be
/// achieved" (Section V).  A growth process is modeled as a diameter
/// distribution over the enumerable (n, m) lattice; a third of a uniform
/// population is metallic.

#include <vector>

#include "band/cnt.h"
#include "phys/rng.h"

namespace carbon::fab {

/// One chirality with its population weight.
struct ChiralityFraction {
  band::Chirality chirality;
  double weight = 0.0;  ///< normalized population fraction
};

/// A chirality population: distribution over (n, m) induced by a Gaussian
/// diameter target (CVD growth control parameter).
class ChiralityPopulation {
 public:
  /// @param d_mean_m  target mean diameter [m]
  /// @param d_sigma_m diameter spread [m]
  /// @param window    enumeration window in sigmas around the mean
  ChiralityPopulation(double d_mean_m, double d_sigma_m, double window = 3.5);

  const std::vector<ChiralityFraction>& fractions() const {
    return fractions_;
  }

  /// Fraction of metallic tubes (1/3 for wide uniform populations).
  double metallic_fraction() const;

  /// Mean diameter of the population [m].
  double mean_diameter() const;

  /// Number of distinct chiralities in the window.
  int num_species() const { return static_cast<int>(fractions_.size()); }

  /// Draw one chirality according to the population weights.
  band::Chirality sample(phys::Rng& rng) const;

  /// Rescale the population: multiply metallic weights by
  /// @p metallic_factor and semiconducting by @p semi_factor, then
  /// renormalize (the primitive that sorting processes are built from).
  void reweight(double metallic_factor, double semi_factor);

 private:
  std::vector<ChiralityFraction> fractions_;
  std::vector<double> weights_;  // cached for sampling
};

}  // namespace carbon::fab
