#pragma once

/// @file placement.h
/// Wafer-scale CNT placement models for the two integration routes of
/// Section V:
///  * aligned growth on ST-cut quartz (atomic steps guide the tubes; the
///    route behind the Shulaker one-bit computers, refs [20, 21]);
///  * chemical self-assembly into pre-patterned trenches from solution
///    (H. Park et al., ref [22] — the >10,000-device statistical study).

#include <cstdint>
#include <vector>

#include "fab/chirality.h"
#include "phys/rng.h"

namespace carbon::fab {

/// One placed tube.
struct PlacedTube {
  band::Chirality chirality;
  double misalignment_deg = 0.0;  ///< angle from the intended direction
  bool bridges_channel = true;    ///< reaches both contacts
};

/// A device site after placement.
struct DeviceSite {
  std::vector<PlacedTube> tubes;
  /// Count of tubes that actually bridge source and drain.
  int bridging_count() const;
  /// Count of bridging metallic tubes (potential shorts).
  int metallic_count() const;
};

/// Aligned quartz growth (route 1).
struct QuartzGrowthModel {
  double tubes_per_um = 5.0;        ///< areal line density across a device
  double alignment_sigma_deg = 1.0; ///< angular spread on quartz steps
  double max_usable_angle_deg = 5.0;///< misaligned tubes miss the contacts
  /// Burn-off: fraction of metallic tubes removed electrically after
  /// growth (the Shulaker flow's metallic-CNT removal step).
  double metallic_burnoff = 0.99;

  /// Populate @p n_sites device sites of channel width @p width_um.
  std::vector<DeviceSite> run(const ChiralityPopulation& pop, int n_sites,
                              double width_um, phys::Rng& rng) const;

  /// Parallel Monte Carlo over the sites: fixed chunks of sites each draw
  /// from their own RNG stream (phys::parallel_for_seeded), so the output
  /// is bit-for-bit identical for any thread count (num_threads 0 =
  /// default pool).
  std::vector<DeviceSite> run_parallel(const ChiralityPopulation& pop,
                                       int n_sites, double width_um,
                                       std::uint64_t seed,
                                       int num_threads = 0) const;

  /// One site drawn from @p rng (the unit both run variants are built on).
  DeviceSite sample_site(const ChiralityPopulation& pop, double width_um,
                         phys::Rng& rng) const;
};

/// Trench self-assembly (route 2, Park-style ion-exchange chemistry).
struct TrenchAssemblyModel {
  double fill_probability = 0.9;  ///< a trench captures >= 1 tube
  double mean_extra_tubes = 0.25; ///< Poisson mean of additional tubes
  double alignment_sigma_deg = 7.0;
  double max_usable_angle_deg = 25.0;

  std::vector<DeviceSite> run(const ChiralityPopulation& pop, int n_sites,
                              phys::Rng& rng) const;

  /// Parallel, thread-count-invariant variant (one RNG stream per site).
  std::vector<DeviceSite> run_parallel(const ChiralityPopulation& pop,
                                       int n_sites, std::uint64_t seed,
                                       int num_threads = 0) const;

  /// One trench drawn from @p rng.
  DeviceSite sample_site(const ChiralityPopulation& pop, phys::Rng& rng) const;
};

}  // namespace carbon::fab
