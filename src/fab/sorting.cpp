#include "fab/sorting.h"

#include <cmath>

#include "phys/require.h"

namespace carbon::fab {

SortingProcess gel_chromatography() {
  return {"gel-chromatography", 0.90, 0.008, 0.75};
}

SortingProcess density_gradient() {
  return {"density-gradient", 0.85, 0.02, 0.60};
}

SortingProcess dna_sorting() {
  return {"dna-sorting", 0.80, 0.002, 0.40};
}

SortingResult apply_sorting(const SortingProcess& process, int passes,
                            double metallic_fraction_0) {
  CARBON_REQUIRE(passes >= 0, "negative pass count");
  CARBON_REQUIRE(metallic_fraction_0 >= 0.0 && metallic_fraction_0 <= 1.0,
                 "metallic fraction outside [0,1]");
  double m = metallic_fraction_0;
  double s = 1.0 - metallic_fraction_0;
  double mass = 1.0;
  for (int i = 0; i < passes; ++i) {
    m *= process.metallic_retention;
    s *= process.semiconducting_retention;
    const double kept = m + s;
    mass *= kept * process.mass_yield;
    if (kept > 0.0) { m /= kept; s /= kept; }
  }
  SortingResult r;
  r.passes = passes;
  r.semiconducting_purity = s;
  r.metallic_ppm = m * 1e6;
  r.overall_mass_yield = mass;
  return r;
}

SortingResult passes_for_purity(const SortingProcess& process,
                                double target_metallic_ppm,
                                double metallic_fraction_0) {
  CARBON_REQUIRE(target_metallic_ppm > 0.0, "target must be positive");
  for (int p = 0; p <= 200; ++p) {
    const SortingResult r = apply_sorting(process, p, metallic_fraction_0);
    if (r.metallic_ppm <= target_metallic_ppm) return r;
  }
  SortingResult fail = apply_sorting(process, 200, metallic_fraction_0);
  fail.passes = -1;
  return fail;
}

void apply_to_population(const SortingProcess& process, int passes,
                         ChiralityPopulation& population) {
  CARBON_REQUIRE(passes >= 0, "negative pass count");
  const double mf = std::pow(process.metallic_retention, passes);
  const double sf = std::pow(process.semiconducting_retention, passes);
  population.reweight(mf, sf);
}

}  // namespace carbon::fab
