#include "fab/chirality.h"

#include <cmath>

#include "phys/require.h"

namespace carbon::fab {

ChiralityPopulation::ChiralityPopulation(double d_mean_m, double d_sigma_m,
                                         double window) {
  CARBON_REQUIRE(d_mean_m > 0.0 && d_sigma_m > 0.0,
                 "diameter stats must be positive");
  const double d_lo = std::max(d_mean_m - window * d_sigma_m, 0.3e-9);
  const double d_hi = d_mean_m + window * d_sigma_m;
  const auto chis = band::enumerate_chiralities(d_lo, d_hi);
  CARBON_REQUIRE(!chis.empty(), "no chiralities in the diameter window");

  double total = 0.0;
  for (const auto& ch : chis) {
    const double d = ch.diameter();
    const double z = (d - d_mean_m) / d_sigma_m;
    const double w = std::exp(-0.5 * z * z);
    fractions_.push_back({ch, w});
    total += w;
  }
  for (auto& f : fractions_) f.weight /= total;
  weights_.reserve(fractions_.size());
  for (const auto& f : fractions_) weights_.push_back(f.weight);
}

double ChiralityPopulation::metallic_fraction() const {
  double m = 0.0;
  for (const auto& f : fractions_) {
    if (f.chirality.is_metallic()) m += f.weight;
  }
  return m;
}

double ChiralityPopulation::mean_diameter() const {
  double d = 0.0;
  for (const auto& f : fractions_) d += f.weight * f.chirality.diameter();
  return d;
}

band::Chirality ChiralityPopulation::sample(phys::Rng& rng) const {
  return fractions_[rng.categorical(weights_)].chirality;
}

void ChiralityPopulation::reweight(double metallic_factor,
                                   double semi_factor) {
  CARBON_REQUIRE(metallic_factor >= 0.0 && semi_factor >= 0.0,
                 "factors must be non-negative");
  double total = 0.0;
  for (auto& f : fractions_) {
    f.weight *= f.chirality.is_metallic() ? metallic_factor : semi_factor;
    total += f.weight;
  }
  CARBON_REQUIRE(total > 0.0, "population annihilated by reweight");
  weights_.clear();
  for (auto& f : fractions_) {
    f.weight /= total;
    weights_.push_back(f.weight);
  }
}

}  // namespace carbon::fab
