// Experiment E1 — Fig. 1 of Kreupl, DATE 2014.
// (a) ID-VG of a CNT-FET and a GNR-FET with the same 0.56 eV band gap at
//     VDS = 0.5 V: the transfer curves overlap on a log scale.
// (b) ID-VDS at VG = 0.5 V: both simulated devices saturate; the
//     experimentally observed GNR ("real GNR") is a straight line at every
//     gate voltage instead.
#include <cmath>
#include <iostream>

#include "core/report.h"
#include "device/cntfet.h"
#include "device/gnrfet.h"
#include "device/ivmodel.h"
#include "device/real_gnr.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "E1 / Fig. 1",
                     "CNT-FET vs GNR-FET at equal band gap (0.56 eV)");

  const device::CntfetModel cnt(device::make_fig1_cntfet_params());
  const device::GnrfetModel gnr(device::make_fig1_gnrfet_params());
  const device::RealGnrModel real_gnr(device::make_wang_gnr_params());

  std::cout << "devices: CNT d = " << cnt.diameter() * 1e9
            << " nm, GNR w = " << gnr.width() * 1e9
            << " nm, both Eg = " << cnt.band_gap() << " eV\n";

  // ---- Fig. 1(a): transfer curves at VDS = 0.5 V (log scale) ----
  phys::DataTable fig1a({"vgs_v", "id_cnt_a", "id_gnr_a", "ratio"});
  for (int i = 0; i <= 30; ++i) {
    const double vg = 0.6 * i / 30;
    const double ic = cnt.drain_current(vg, 0.5);
    const double ig = gnr.drain_current(vg, 0.5);
    fig1a.add_row({vg, ic, ig, ic / ig});
  }
  core::emit_table(std::cout, fig1a, "Fig. 1(a): ID-VG at VDS = 0.5 V",
                   "fig1a_transfer.csv");

  // ---- Fig. 1(b): output curves at VG = 0.5 V + real GNR lines ----
  // The experimental ribbon is shown at two (back-)gate voltages as in the
  // paper's annotation, scaled into the same current window.
  phys::DataTable fig1b({"vds_v", "id_cnt_a", "id_gnr_a", "id_realgnr_vg1_a",
                         "id_realgnr_vg2_a"});
  for (int i = 1; i <= 25; ++i) {
    const double vd = 0.5 * i / 25;
    fig1b.add_row({vd, cnt.drain_current(0.5, vd), gnr.drain_current(0.5, vd),
                   real_gnr.drain_current(2.0, vd),
                   real_gnr.drain_current(1.5, vd)});
  }
  core::emit_table(std::cout, fig1b, "Fig. 1(b): ID-VDS at VG = 0.5 V",
                   "fig1b_output.csv");

  // ---- paper-vs-measured claims ----
  const double sat_cnt = cnt.drain_current(0.5, 0.5) / cnt.drain_current(0.5, 0.2);
  const double sat_real =
      real_gnr.drain_current(2.0, 0.5) / real_gnr.drain_current(2.0, 0.2);
  const double overlap_decades = std::log10(
      cnt.drain_current(0.0, 0.5) > 0 && gnr.drain_current(0.0, 0.5) > 0
          ? cnt.drain_current(0.0, 0.5) / gnr.drain_current(0.0, 0.5)
          : 1e9);
  const int misses = core::print_claims(
      std::cout,
      {{"fig1.sat_cnt", "CNT saturation I(0.5V)/I(0.2V)", 1.0, sat_cnt, "",
        0.15},
       {"fig1.sat_realgnr", "real GNR I(0.5V)/I(0.2V) (linear)", 2.5,
        sat_real, "", 0.15},
       // Degeneracy 4 vs 2 predicts a log10(2) ~ 0.3 decade offset —
       // invisible on the paper's 7-decade axis ("data overlap").
       {"fig1.overlap", "log-offset CNT vs GNR at Vg=0 [decades]", 0.30,
        overlap_decades, "dec", 0.6},
       {"fig1.on_cnt", "CNT on-current at (0.5, 0.5)", 7e-6,
        cnt.drain_current(0.5, 0.5), "A", 0.6}});
  return misses == 0 ? 0 : 1;
}
