// Experiment T2 — Section III.B text claims.
// The overall series resistance of a single CNT-FET has been measured as
// low as ~11 kOhm (quantum limit 6.45 kOhm + two real contacts); the
// contact resistance rises when the metal overlap shrinks below ~100 nm,
// yet a 20 nm contact still performs well.
#include <iostream>

#include "core/report.h"
#include "device/cntfet.h"
#include "phys/constants.h"
#include "transport/schottky.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "T2 / Sec. III.B",
                     "contact-length scaling of CNT series resistance");

  const transport::ContactResistanceModel contact;

  phys::DataTable t({"lc_nm", "r_one_contact_kohm", "r_total_kohm",
                     "i_on_ua_at_0p5v"});
  for (double lc_nm : {5.0, 10.0, 20.0, 40.0, 60.0, 100.0, 200.0, 400.0}) {
    const double lc = lc_nm * 1e-9;
    const double rc = contact.contact_resistance(lc);
    const double rtot = contact.total_series_resistance(lc);
    // Device impact: Franklin 20 nm channel with these contacts.
    device::CntfetParams p = device::make_franklin_cntfet_params(20e-9);
    p.r_source_ohm = rc;
    p.r_drain_ohm = rc;
    const device::CntfetModel dev(p);
    t.add_row({lc_nm, rc * 1e-3, rtot * 1e-3,
               dev.drain_current(0.5, 0.5) * 1e6});
  }
  core::emit_table(std::cout, t, "contact scaling", "t2_contact_scaling.csv");

  const double r_long = contact.total_series_resistance(400e-9);
  const double r_20 = contact.total_series_resistance(20e-9);
  const double rq = phys::kCntQuantumResistance;

  std::cout << "\nquantum limit h/4e^2 = " << rq * 1e-3
            << " kOhm; long-contact total = " << r_long * 1e-3
            << " kOhm; 20 nm contacts = " << r_20 * 1e-3 << " kOhm\n";

  const int misses = core::print_claims(
      std::cout,
      {{"t2.rq", "quantum resistance h/4e^2", 6.45e3, rq, "Ohm", 0.02},
       {"t2.r11k", "champion series resistance (long contacts)", 11e3,
        r_long, "Ohm", 0.15},
       {"t2.r20nm", "20 nm contacts still usable (< 2.5x long limit)", 1.8,
        r_20 / r_long, "x", 0.4}});
  return misses == 0 ? 0 : 1;
}
