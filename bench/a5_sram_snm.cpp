// Ablation A5 — the storage consequence of Fig. 2: a cross-coupled
// inverter pair (6T SRAM hold state) is bistable only if its devices
// saturate.  Butterfly curves and hold SNM for the saturating FET, the
// linear FET, and the CNTFET at scaled supplies.
#include <iostream>
#include <memory>

#include "circuit/sram.h"
#include "core/report.h"
#include "device/alpha_power.h"
#include "device/cntfet.h"
#include "device/linear_fet.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "A5 / Fig. 2 corollary",
                     "6T SRAM hold static noise margin vs device saturation");

  auto sat = std::make_shared<device::AlphaPowerModel>(
      device::make_fig2_saturating_params());
  auto lin = std::make_shared<device::LinearFetModel>(
      device::make_fig2_linear_params());
  auto cnt = std::make_shared<device::CntfetModel>(
      device::make_franklin_cntfet_params(20e-9));

  // Butterfly of the saturating cell for plotting.
  core::emit_table(std::cout, circuit::butterfly_curve(sat), "butterfly "
                   "(saturating cell, VDD = 1 V)", "a5_butterfly_sat.csv");

  phys::DataTable t({"cell_idx", "vdd_v", "snm_mv", "bistable"});
  const auto add = [&](int idx, device::DeviceModelPtr m, double vdd) {
    circuit::CellOptions opt;
    opt.v_dd = vdd;
    opt.c_load = 1e-15;
    const auto r = circuit::hold_snm(std::move(m), opt);
    t.add_row({static_cast<double>(idx), vdd, r.snm_v * 1e3,
               r.bistable ? 1.0 : 0.0});
    return r;
  };
  const auto r_sat = add(0, sat, 1.0);
  const auto r_lin = add(1, lin, 1.0);
  const auto r_cnt05 = add(2, cnt, 0.5);
  const auto r_cnt03 = add(2, cnt, 0.35);
  core::emit_table(std::cout, t,
                   "0: saturating FET @1V, 1: linear FET @1V, "
                   "2: CNTFET @0.5/0.35V",
                   "a5_sram_snm.csv");

  std::cout << "\nhold SNM: saturating " << r_sat.snm_v * 1e3
            << " mV, linear " << r_lin.snm_v * 1e3 << " mV (bistable="
            << r_lin.bistable << "), CNT@0.5V " << r_cnt05.snm_v * 1e3
            << " mV, CNT@0.35V " << r_cnt03.snm_v * 1e3 << " mV\n";

  const int misses = core::print_claims(
      std::cout,
      {{"a5.sat", "saturating cell holds state (SNM > 150 mV)", 0.15,
        r_sat.snm_v, "V", 0.2, core::ClaimKind::kAtLeast},
       {"a5.lin", "linear cell cannot store a bit", 0.0, r_lin.snm_v, "V",
        1e-9},
       {"a5.cnt", "CNT cell bistable at 0.5 V", 0.08, r_cnt05.snm_v, "V",
        0.3, core::ClaimKind::kAtLeast},
       {"a5.cnt_lowv", "CNT cell still bistable at 0.35 V", 0.04,
        r_cnt03.snm_v, "V", 0.5, core::ClaimKind::kAtLeast}});
  return misses == 0 ? 0 : 1;
}
