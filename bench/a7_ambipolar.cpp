// Ablation A7 — contact engineering (Sec. III.B context): CNTs are
// intrinsically ambipolar Schottky devices; the valence band conducts at
// negative gate drive once the drain bias approaches the band gap.
// MOSFET-like doped contacts block the hole path.  This bench shows both
// branches and the off-state penalty ambipolarity costs at high VDS.
#include <cmath>
#include <iostream>

#include "core/report.h"
#include "device/cntfet.h"
#include "device/ivmodel.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "A7 / Sec. III.B context",
                     "ambipolar (Schottky) vs unipolar (doped-contact) "
                     "CNTFET branches");

  device::CntfetParams uni = device::make_franklin_cntfet_params(20e-9);
  device::CntfetParams ambi = uni;
  ambi.name = "cnt-fet(ambipolar)";
  ambi.include_holes = true;

  const device::CntfetModel dev_uni(uni);
  const device::CntfetModel dev_ambi(ambi);

  phys::DataTable t({"vgs_v", "i_unipolar_a", "i_ambipolar_a"});
  for (int i = 0; i <= 48; ++i) {
    const double vg = -0.6 + 1.2 * i / 48;
    t.add_row({vg, std::abs(dev_uni.drain_current(vg, 0.6)),
               std::abs(dev_ambi.drain_current(vg, 0.6))});
  }
  core::emit_table(std::cout, t, "transfer curves at VDS = 0.6 V",
                   "a7_ambipolar.csv");

  // The ambipolar branch: current rises again at negative gate voltage.
  const double i_neg_uni = std::abs(dev_uni.drain_current(-0.5, 0.6));
  const double i_neg_ambi = std::abs(dev_ambi.drain_current(-0.5, 0.6));
  // Minimum leakage point of the ambipolar device vs the unipolar floor.
  double i_min_ambi = 1e9;
  for (int i = 0; i < t.num_rows(); ++i) {
    i_min_ambi = std::min(i_min_ambi, t.at(i, 2));
  }
  const double i_min_uni = std::abs(dev_uni.drain_current(0.0, 0.6));

  std::cout << "\nat vgs = -0.5 V, VDS = 0.6 V: unipolar " << i_neg_uni
            << " A vs ambipolar " << i_neg_ambi
            << " A (hole branch)\nbest off-state: ambipolar "
            << i_min_ambi << " A vs unipolar floor " << i_min_uni << " A\n";

  const int misses = core::print_claims(
      std::cout,
      {{"a7.branch", "hole branch dominates at negative gate", 100.0,
        i_neg_ambi / std::max(i_neg_uni, 1e-30), "x", 0.5,
        core::ClaimKind::kAtLeast},
       {"a7.onstate", "on-state unaffected by contact type", 1.0,
        dev_ambi.drain_current(0.6, 0.6) / dev_uni.drain_current(0.6, 0.6),
        "", 0.05},
       {"a7.penalty", "ambipolar off-floor penalty at high VDS", 2.0,
        i_min_ambi / std::max(i_min_uni, 1e-30), "x", 1.0,
        core::ClaimKind::kAtLeast}});
  return misses == 0 ? 0 : 1;
}
