// Ablation A1 / claim T4 — Section III.C and ref [1] (Skotnicki & Boeuf).
// High-mobility low-DOS channels carry a "dark space" that inflates the
// inversion EOT and degrades SS/DIBL at short gate length no matter how
// high the gate k-value; a single-atomic-layer CNT channel does not.
#include <iostream>
#include <memory>

#include "core/report.h"
#include "core/scaling.h"
#include "device/cntfet.h"
#include "device/mosfet.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "A1 / Sec. III.C",
                     "dark-space ablation: SS & DIBL vs gate length");

  const std::vector<double> lgs{9e-9, 15e-9, 20e-9, 30e-9, 45e-9, 60e-9};

  const auto cnt_make = [](double lg) {
    return std::static_pointer_cast<const device::IDeviceModel>(
        std::make_shared<device::CntfetModel>(
            device::make_franklin_cntfet_params(lg)));
  };
  const auto inas_make = [](double lg) {
    return std::static_pointer_cast<const device::IDeviceModel>(
        std::make_shared<device::VirtualSourceModel>(
            device::make_inas_hemt_params(lg)));
  };
  const auto inas_nodark_make = [](double lg) {
    auto p = device::make_inas_hemt_params(lg);
    p.dark_space = 0.0;  // the ablation: same device, dark space removed
    p.name = "inas-no-darkspace";
    return std::static_pointer_cast<const device::IDeviceModel>(
        std::make_shared<device::VirtualSourceModel>(p));
  };
  const auto si_make = [](double lg) {
    return std::static_pointer_cast<const device::IDeviceModel>(
        std::make_shared<device::VirtualSourceModel>(
            device::make_si_trigate_params(lg)));
  };

  core::emit_table(std::cout, core::short_channel_table(cnt_make, lgs, 0.5),
                   "CNTFET (no dark space by construction)",
                   "a1_cnt.csv");
  core::emit_table(std::cout, core::short_channel_table(inas_make, lgs, 0.5),
                   "InAs HEMT with dark space", "a1_inas.csv");
  core::emit_table(std::cout,
                   core::short_channel_table(inas_nodark_make, lgs, 0.5),
                   "InAs HEMT, dark space ablated to zero",
                   "a1_inas_nodark.csv");
  core::emit_table(std::cout, core::short_channel_table(si_make, lgs, 0.5),
                   "Si trigate", "a1_si.csv");

  // Claims: at 15 nm the III-V device degrades hard; the CNT barely moves.
  const auto ss_at = [&](auto make, double lg) {
    const auto t = core::short_channel_table(make, {lg}, 0.5);
    return t.at(0, t.column_index("ss_mv_dec"));
  };
  const double cnt9 = ss_at(cnt_make, 9e-9);
  const double inas15 = ss_at(inas_make, 15e-9);
  const double inas15_fix = ss_at(inas_nodark_make, 15e-9);

  std::cout << "\nSS @ short Lg: CNT(9nm) = " << cnt9
            << ", InAs(15nm) = " << inas15
            << ", InAs(15nm, no dark space) = " << inas15_fix
            << " mV/dec\n";

  const int misses = core::print_claims(
      std::cout,
      {{"a1.cnt9", "9 nm CNTFET SS stays near thermal", 70.0, cnt9,
        "mV/dec", 0.25},
       {"a1.inas", "15 nm InAs SS blows up vs CNT", 2.0, inas15 / cnt9, "x",
        0.6},
       {"a1.ablate", "removing dark space recovers SS", 1.15,
        inas15 / inas15_fix, "x", 0.5}});
  return misses == 0 ? 0 : 1;
}
