// Ablation A6 — Fig. 3's argument made quantitative: "the most intense
// channel control can be achieved with a gate-all-around structure...
// smallest short channel effects, like drain-induced barrier lowering, and
// very high on current."  Same tube, four gate geometries.
#include <iostream>

#include "core/report.h"
#include "phys/require.h"
#include "device/cntfet.h"
#include "device/ivmodel.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "A6 / Fig. 3",
                     "gate geometry ablation: GAA vs omega vs planar vs "
                     "back gate");

  phys::DataTable t({"geometry_idx", "alpha_g", "alpha_d", "cins_pf_per_m",
                     "ss_mv_dec", "dibl_mv_v", "ion_ua"});
  const device::GateGeometry geoms[] = {
      device::GateGeometry::kGateAllAround, device::GateGeometry::kOmega,
      device::GateGeometry::kPlanarTop, device::GateGeometry::kPlanarBack};
  double ss_gaa = 0.0, ss_back = 0.0, ion_gaa = 0.0, ion_back = 0.0;
  for (int i = 0; i < 4; ++i) {
    device::CntfetParams p = device::make_franklin_cntfet_params(15e-9);
    p.gate.geometry = geoms[i];
    const device::CntfetModel dev(p);
    const double ss =
        device::subthreshold_swing_mv_dec(dev, 0.05, 0.2, 0.5);
    const double ion = dev.drain_current(0.5, 0.5);
    // DIBL from the threshold shift between 50 mV and 0.5 V drain bias.
    const double i_crit = 1e-8;
    double dibl = 0.0;
    try {
      dibl = device::dibl_mv_per_v(dev, i_crit, 0.05, 0.5, -0.3, 0.8);
    } catch (const phys::PreconditionError&) {
      dibl = -1.0;
    }
    t.add_row({static_cast<double>(i), p.gate.alpha_g(), p.gate.alpha_d(),
               p.gate.insulator_capacitance() * 1e12, ss, dibl, ion * 1e6});
    if (i == 0) { ss_gaa = ss; ion_gaa = ion; }
    if (i == 3) { ss_back = ss; ion_back = ion; }
  }
  core::emit_table(std::cout, t,
                   "0: GAA, 1: omega, 2: planar top, 3: back gate",
                   "a6_gate_geometry.csv");

  std::cout << "\nGAA vs back gate: SS " << ss_gaa << " -> " << ss_back
            << " mV/dec, Ion " << ion_gaa * 1e6 << " -> " << ion_back * 1e6
            << " uA\n";

  const int misses = core::print_claims(
      std::cout,
      {{"a6.gaa_ss", "GAA swing near thermal limit", 63.0, ss_gaa, "mV/dec",
        0.1},
       {"a6.ordering", "back gate SS penalty vs GAA", 1.5,
        ss_back / ss_gaa, "x", 0.4},
       {"a6.ion", "GAA on-current advantage", 1.5, ion_gaa / ion_back, "x",
        0.8, core::ClaimKind::kAtLeast}});
  return misses == 0 ? 0 : 1;
}
