// Experiment E4 — Fig. 4 of Kreupl, DATE 2014.
// An ideal CNTFET vs the same device with 50 kOhm source and drain contact
// resistances: the current collapses and the output characteristic turns
// linear — saturation is pushed out of the low-voltage window.
#include <iostream>

#include "core/report.h"
#include "device/cntfet.h"
#include "device/ivmodel.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "E4 / Fig. 4",
                     "ideal CNTFET vs 50 kOhm per-contact series resistance");

  device::CntfetParams ideal = device::make_franklin_cntfet_params(20e-9);
  device::CntfetParams loaded = ideal;
  loaded.name = "cnt-fet+2x50k";
  loaded.r_source_ohm = 50e3;
  loaded.r_drain_ohm = 50e3;
  const device::CntfetModel dev_ideal(ideal);
  const device::CntfetModel dev_loaded(loaded);

  const std::vector<double> gates{0.3, 0.4, 0.5, 0.6};
  core::emit_table(std::cout,
                   device::output_family(dev_ideal, 0.0, 0.6, 25, gates),
                   "Fig. 4(a): ideal CNTFET (no contact resistance)",
                   "fig4a_ideal.csv");
  core::emit_table(std::cout,
                   device::output_family(dev_loaded, 0.0, 0.6, 25, gates),
                   "Fig. 4(b): with 50 kOhm source + drain",
                   "fig4b_loaded.csv");

  const double i_ideal = dev_ideal.drain_current(0.6, 0.5);
  const double i_loaded = dev_loaded.drain_current(0.6, 0.5);
  const double sat_ideal =
      dev_ideal.drain_current(0.6, 0.5) / dev_ideal.drain_current(0.6, 0.25);
  const double sat_loaded =
      dev_loaded.drain_current(0.6, 0.5) / dev_loaded.drain_current(0.6, 0.25);

  std::cout << "\non-current: ideal " << i_ideal * 1e6 << " uA -> loaded "
            << i_loaded * 1e6 << " uA (" << i_loaded / i_ideal * 100
            << "% retained)\n";
  std::cout << "saturation metric I(0.5)/I(0.25): ideal " << sat_ideal
            << " -> loaded " << sat_loaded << " (2.0 = perfectly linear)\n";

  const int misses = core::print_claims(
      std::cout,
      {{"fig4.reduction", "current retained with 2x50k contacts", 0.40,
        i_loaded / i_ideal, "", 0.5},
       {"fig4.sat_ideal", "ideal device saturation ratio (~1)", 1.1,
        sat_ideal, "", 0.2},
       {"fig4.sat_loaded", "loaded device linearized ratio (toward 2)", 1.7,
        sat_loaded, "", 0.25}});
  return misses == 0 ? 0 : 1;
}
