// Ablation A2 / claim T5 — Section II via Schwierz (ref [8]).
// Missing current saturation collapses the voltage gain gm/gds and with it
// fmax: why non-saturating GNRs fail in RF no matter how short the gate.
#include <iostream>

#include "core/report.h"
#include "device/alpha_power.h"
#include "device/cntfet.h"
#include "device/linear_fet.h"
#include "device/real_gnr.h"
#include "device/rf_metrics.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "A2 / Sec. II",
                     "RF figures of merit: saturating vs linear devices");

  const device::CntfetModel cnt(device::make_franklin_cntfet_params(20e-9));
  const device::AlphaPowerModel sat(device::make_fig2_saturating_params());
  const device::LinearFetModel lin(device::make_fig2_linear_params());
  const device::RealGnrModel gnr(device::make_wang_gnr_params());

  device::RfParasitics par;  // identical parasitics: isolate gm/gds

  phys::DataTable t({"device_idx", "gm_us", "gds_us", "gain",
                     "ft_ghz", "fmax_ghz"});
  int idx = 0;
  const auto add = [&](const device::IDeviceModel& m, double vg, double vd) {
    const auto ss = device::extract_small_signal(m, vg, vd, par);
    t.add_row({static_cast<double>(idx++), ss.gm_s * 1e6, ss.gds_s * 1e6,
               ss.gain, ss.ft_hz * 1e-9, ss.fmax_hz * 1e-9});
    return ss;
  };
  const auto ss_cnt = add(cnt, 0.5, 0.4);
  const auto ss_sat = add(sat, 0.8, 0.8);
  const auto ss_lin = add(lin, 0.8, 0.8);
  const auto ss_gnr = add(gnr, 0.5, 0.5);  // CMOS-window bias
  core::emit_table(std::cout, t,
                   "0: CNTFET, 1: saturating FET, 2: linear FET, 3: real GNR",
                   "a2_rf_merit.csv");

  std::cout << "\ngain: CNT " << ss_cnt.gain << ", saturating " << ss_sat.gain
            << ", linear " << ss_lin.gain << ", real GNR " << ss_gnr.gain
            << "\n";

  const int misses = core::print_claims(
      std::cout,
      {{"a2.cnt_gain", "CNTFET intrinsic gain >> 1", 20.0, ss_cnt.gain, "",
        0.5, core::ClaimKind::kAtLeast},
       {"a2.lin_gain", "linear FET gain collapses (~<=1)", 1.0, ss_lin.gain,
        "", 0.1, core::ClaimKind::kAtMost},
       {"a2.fmax_ratio", "fmax penalty of missing saturation", 2.0,
        ss_sat.fmax_hz / ss_lin.fmax_hz, "x", 0.25,
        core::ClaimKind::kAtLeast},
       {"a2.gnr_gain", "real GNR gain ~<= 1 in a CMOS window", 1.0,
        ss_gnr.gain, "", 0.25, core::ClaimKind::kAtMost}});
  return misses == 0 ? 0 : 1;
}
