#!/usr/bin/env bash
# Run the perf-kernel microbenchmarks and record the results (plus the
# headline tabulated-vs-direct VTC speedup) in BENCH_perf.json at the repo
# root.  Usage:
#
#   bench/run_bench.sh [build_dir] [extra google-benchmark args...]
#
# The build dir defaults to ./build and must contain the perf_kernels
# binary (configure with -DCARBON_BUILD_BENCH=ON, the default).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bin="$build_dir/perf_kernels"
if [[ ! -x "$bin" ]]; then
  echo "error: $bin not found — build with: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

raw_json="$(mktemp)"
trap 'rm -f "$raw_json"' EXIT

"$bin" --benchmark_format=json --benchmark_out_format=json \
       --benchmark_out="$raw_json" "$@" >/dev/null

python3 - "$raw_json" "$repo_root/BENCH_perf.json" <<'EOF'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    data = json.load(f)

times = {b["name"]: b for b in data.get("benchmarks", [])}

def real_time_ns(name):
    b = times.get(name)
    return b["real_time"] if b else None

summary = {}
direct = real_time_ns("BM_SpiceVtcSweepCntfetDirect")
fast = real_time_ns("BM_SpiceVtcSweepWarmStart")
if direct and fast:
    summary["vtc_sweep_direct_ns"] = direct
    summary["vtc_sweep_tabulated_warmstart_ns"] = fast
    summary["vtc_sweep_speedup"] = direct / fast

serial = real_time_ns("BM_PlacementMonteCarlo")
par = real_time_ns("BM_PlacementMonteCarloParallel/0")
if serial and par:
    summary["placement_mc_serial_ns"] = serial
    summary["placement_mc_parallel_ns"] = par
    summary["placement_mc_speedup"] = serial / par

data["summary"] = summary
with open(out_path, "w") as f:
    json.dump(data, f, indent=2)

for k, v in summary.items():
    print(f"{k}: {v:.4g}")
print(f"wrote {out_path}")
EOF
