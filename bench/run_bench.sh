#!/usr/bin/env bash
# Run the perf-kernel microbenchmarks and record the results (plus the
# headline speedups: tabulated-vs-direct VTC sweep, parallel Monte Carlo,
# and the dense-vs-sparse Newton-solve scaling family) in BENCH_perf.json
# at the repo root.  Usage:
#
#   bench/run_bench.sh [build_dir] [extra google-benchmark args...]
#
# The build dir defaults to ./build.  The script configures and builds it
# with -DCMAKE_BUILD_TYPE=Release -DCARBON_BUILD_BENCH=ON itself, and the
# recording step REFUSES to write BENCH_perf.json when the perf_kernels
# binary reports anything but a Release build of libcarbon (the JSON
# context keys carbon_build_type / carbon_cmake_build_type).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

cmake -B "$build_dir" -S "$repo_root" \
      -DCMAKE_BUILD_TYPE=Release -DCARBON_BUILD_BENCH=ON
if ! cmake --build "$build_dir" -j --target perf_kernels; then
  echo "error: could not build perf_kernels — is google-benchmark installed?" >&2
  exit 1
fi
bin="$build_dir/perf_kernels"

raw_json="$(mktemp)"
trap 'rm -f "$raw_json"' EXIT

"$bin" --benchmark_format=json --benchmark_out_format=json \
       --benchmark_out="$raw_json" "$@" >/dev/null

python3 - "$raw_json" "$repo_root/BENCH_perf.json" <<'EOF'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    data = json.load(f)

ctx = data.get("context", {})
build_type = ctx.get("carbon_build_type", "unknown")
cmake_type = ctx.get("carbon_cmake_build_type", "unknown")
if build_type != "release" or cmake_type.lower() != "release":
    sys.exit(
        f"error: refusing to record benchmarks from a non-Release library "
        f"build (carbon_build_type={build_type}, "
        f"carbon_cmake_build_type={cmake_type}); rebuild with "
        f"-DCMAKE_BUILD_TYPE=Release")

times = {b["name"]: b for b in data.get("benchmarks", [])}

def real_time_ns(name):
    b = times.get(name)
    if b is None:
        return None
    # Benchmarks may report in us (the Newton family) or ns; normalise.
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return b["real_time"] * scale

summary = {}
direct = real_time_ns("BM_SpiceVtcSweepCntfetDirect")
fast = real_time_ns("BM_SpiceVtcSweepWarmStart")
if direct and fast:
    summary["vtc_sweep_direct_ns"] = direct
    summary["vtc_sweep_tabulated_warmstart_ns"] = fast
    summary["vtc_sweep_speedup"] = direct / fast

serial = real_time_ns("BM_PlacementMonteCarlo")
par = real_time_ns("BM_PlacementMonteCarloParallel/0")
if serial and par:
    summary["placement_mc_serial_ns"] = serial
    summary["placement_mc_parallel_ns"] = par
    summary["placement_mc_speedup"] = serial / par

# Newton-solve scaling family: per-size times for both backends plus the
# headline sparse-vs-dense speedup at the largest size the dense backend
# still runs (>= 1024 unknowns in the default family).
newton = {}
for name, b in times.items():
    for backend in ("Dense", "Sparse"):
        prefix = f"BM_NewtonSolve{backend}/"
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            n = int(name[len(prefix):])
            newton.setdefault(n, {})[backend.lower()] = real_time_ns(name)
if newton:
    summary["newton_solve_ns"] = {str(n): d for n, d in sorted(newton.items())}
    both = [n for n, d in newton.items() if "dense" in d and "sparse" in d]
    if both:
        n_big = max(both)
        summary["newton_sparse_speedup_at"] = n_big
        summary["newton_sparse_speedup"] = (
            newton[n_big]["dense"] / newton[n_big]["sparse"])

data["summary"] = summary
with open(out_path, "w") as f:
    json.dump(data, f, indent=2)

for k, v in summary.items():
    if isinstance(v, dict):
        print(f"{k}:")
        for kk, vv in v.items():
            print(f"  {kk}: {vv}")
    else:
        print(f"{k}: {v:.4g}")
print(f"wrote {out_path}")
EOF
