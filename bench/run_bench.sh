#!/usr/bin/env bash
# Run the perf-kernel microbenchmarks and record the results (plus the
# headline speedups: tabulated-vs-direct VTC sweep, parallel Monte Carlo,
# the dense-vs-sparse Newton-solve and AC-sweep scaling families, the
# large-array O(N) transient ratios, and the fault-injected ensemble yield
# sweep) in BENCH_perf.json at the repo root.
# Usage:
#
#   bench/run_bench.sh [build_dir] [extra google-benchmark args...]
#
# The build dir defaults to ./build.  The script configures and builds it
# with -DCMAKE_BUILD_TYPE=Release -DCARBON_BUILD_BENCH=ON itself, and the
# recording step REFUSES to write BENCH_perf.json when:
#  * the perf_kernels binary reports anything but a Release build of
#    libcarbon (JSON context keys carbon_build_type /
#    carbon_cmake_build_type), or
#  * google-benchmark itself is a debug build (context key
#    library_build_type) — a debug benchmark library taints the timing
#    loop itself.  CI builds benchmark Release from source (see the
#    bench-smoke job); on a machine where only a distro debug build is
#    available, CARBON_BENCH_ALLOW_DEBUG_BENCHLIB=1 records anyway and
#    stamps the override into the summary (the fixed-vs-adaptive and
#    dense-vs-sparse *ratios* are measured inside one binary and stay
#    valid; absolute times should not be trusted).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

cmake -B "$build_dir" -S "$repo_root" \
      -DCMAKE_BUILD_TYPE=Release -DCARBON_BUILD_BENCH=ON
if ! cmake --build "$build_dir" -j --target perf_kernels; then
  echo "error: could not build perf_kernels — is google-benchmark installed?" >&2
  exit 1
fi
bin="$build_dir/perf_kernels"

raw_json="$(mktemp)"
trap 'rm -f "$raw_json"' EXIT

"$bin" --benchmark_format=json --benchmark_out_format=json \
       --benchmark_out="$raw_json" "$@" >/dev/null

python3 - "$raw_json" "$repo_root/BENCH_perf.json" <<'EOF'
import json, os, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    data = json.load(f)

ctx = data.get("context", {})
build_type = ctx.get("carbon_build_type", "unknown")
cmake_type = ctx.get("carbon_cmake_build_type", "unknown")
if build_type != "release" or cmake_type.lower() != "release":
    sys.exit(
        f"error: refusing to record benchmarks from a non-Release library "
        f"build (carbon_build_type={build_type}, "
        f"carbon_cmake_build_type={cmake_type}); rebuild with "
        f"-DCMAKE_BUILD_TYPE=Release")

# Same gate for google-benchmark itself: a debug benchmark library taints
# the timing loop around every measurement.
bench_lib_type = ctx.get("library_build_type", "unknown")
bench_lib_override = False
if bench_lib_type != "release":
    if os.environ.get("CARBON_BENCH_ALLOW_DEBUG_BENCHLIB") != "1":
        sys.exit(
            f"error: refusing to record benchmarks against a non-Release "
            f"google-benchmark (library_build_type={bench_lib_type}); build "
            f"benchmark Release from source (see the bench-smoke job in "
            f".github/workflows/ci.yml) or set "
            f"CARBON_BENCH_ALLOW_DEBUG_BENCHLIB=1 to record anyway — "
            f"in-binary ratios stay valid, absolute times are tainted")
    bench_lib_override = True
    print("warning: recording against a debug google-benchmark library "
          "(CARBON_BENCH_ALLOW_DEBUG_BENCHLIB=1); absolute times tainted",
          file=sys.stderr)

times = {b["name"]: b for b in data.get("benchmarks", [])}

def real_time_ns(name):
    b = times.get(name)
    if b is None:
        return None
    # Benchmarks may report in us (the Newton family) or ns; normalise.
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return b["real_time"] * scale

summary = {}
# Provenance, duplicated from the context block so consumers (and the CI
# release-build assert) can read it without digging through the context.
summary["carbon_build_type"] = build_type
summary["carbon_cmake_build_type"] = cmake_type
summary["benchmark_library_build_type"] = bench_lib_type

direct = real_time_ns("BM_SpiceVtcSweepCntfetDirect")
fast = real_time_ns("BM_SpiceVtcSweepWarmStart")
if direct and fast:
    summary["vtc_sweep_direct_ns"] = direct
    summary["vtc_sweep_tabulated_warmstart_ns"] = fast
    summary["vtc_sweep_speedup"] = direct / fast

serial = real_time_ns("BM_PlacementMonteCarlo")
par = real_time_ns("BM_PlacementMonteCarloParallel/0")
if serial and par:
    summary["placement_mc_serial_ns"] = serial
    summary["placement_mc_parallel_ns"] = par
    summary["placement_mc_speedup"] = serial / par

# Newton-solve scaling family: per-size times for both backends plus the
# headline sparse-vs-dense speedup at the largest size the dense backend
# still runs (>= 1024 unknowns in the default family).
newton = {}
for name, b in times.items():
    for backend in ("Dense", "Sparse"):
        prefix = f"BM_NewtonSolve{backend}/"
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            n = int(name[len(prefix):])
            newton.setdefault(n, {})[backend.lower()] = real_time_ns(name)
if newton:
    summary["newton_solve_ns"] = {str(n): d for n, d in sorted(newton.items())}
    both = [n for n, d in newton.items() if "dense" in d and "sparse" in d]
    if both:
        n_big = max(both)
        summary["newton_sparse_speedup_at"] = n_big
        summary["newton_sparse_speedup"] = (
            newton[n_big]["dense"] / newton[n_big]["sparse"])

# Small-signal AC scaling family: per-size sweep times for both complex
# backends plus the headline sparse-vs-dense speedup at the largest size
# the dense backend still runs (>= 1024 unknowns in the default family).
ac = {}
for name, b in times.items():
    for backend in ("Dense", "Sparse"):
        prefix = f"BM_AcSweep{backend}/"
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            n = int(name[len(prefix):])
            ac.setdefault(n, {})[backend.lower()] = real_time_ns(name)
if ac:
    summary["ac_sweep_ns"] = {str(n): d for n, d in sorted(ac.items())}
    both = [n for n, d in ac.items() if "dense" in d and "sparse" in d]
    if both:
        n_big = max(both)
        summary["ac_sparse_speedup_at"] = n_big
        summary["ac_sparse_speedup"] = (
            ac[n_big]["dense"] / ac[n_big]["sparse"])

# Large-array adaptive transients: per-stage/per-cell cost ratio between
# the small and the large configuration guards O(N) end-to-end scaling
# through the adaptive engine (1.0 = perfectly linear).
for family, key in (("BM_TransientRingScaleAdaptive", "transient_ring_scale"),
                    ("BM_TransientSramColumnAdaptive",
                     "transient_sram_column")):
    sizes = {}
    for name in times:
        prefix = f"{family}/"
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            n = int(name[len(prefix):])
            sizes[n] = real_time_ns(name)
    if len(sizes) >= 2:
        n_lo, n_hi = min(sizes), max(sizes)
        summary[f"{key}_ns"] = {str(n): t for n, t in sorted(sizes.items())}
        summary[f"{key}_per_unit_ratio"] = (
            (sizes[n_hi] / n_hi) / (sizes[n_lo] / n_lo))

# Adaptive transient engine: fixed-vs-adaptive pairs on the ring-oscillator
# and SRAM-write workloads.  Wall-clock speedup plus the deterministic work
# counters (Newton iterations, device evals) and the accuracy-vs-reference
# metrics each benchmark computed against its 4x-finer fixed-step run.
for pair, key in (("RingOsc", "transient_ring"),
                  ("SramWrite", "transient_sram")):
    fx = times.get(f"BM_Transient{pair}Fixed")
    ad = times.get(f"BM_Transient{pair}Adaptive")
    if not (fx and ad):
        continue
    t_fx = real_time_ns(f"BM_Transient{pair}Fixed")
    t_ad = real_time_ns(f"BM_Transient{pair}Adaptive")
    summary[f"{key}_fixed_ns"] = t_fx
    summary[f"{key}_adaptive_ns"] = t_ad
    summary[f"{key}_speedup"] = t_fx / t_ad
    summary[f"{key}_newton_reduction"] = fx["newton_iters"] / ad["newton_iters"]
    summary[f"{key}_deviceeval_reduction"] = (
        fx["device_evals"] / ad["device_evals"])
    summary[f"{key}_fixed_rms_v"] = fx["rms_v_vs_ref"]
    summary[f"{key}_adaptive_rms_v"] = ad["rms_v_vs_ref"]
    if "period_relerr" in fx:
        summary[f"{key}_fixed_period_relerr"] = fx["period_relerr"]
        summary[f"{key}_adaptive_period_relerr"] = ad["period_relerr"]

# Fault-tolerant ensemble engine: the SRAM write yield sweep with ~5%
# fault-injected trials.  Per-size trial throughput plus the yield and
# failure/retry accounting and the thread-scaling efficiency against the
# in-binary serial reference (1.0 = perfect scaling).
ens = {}
for name, b in times.items():
    prefix = "BM_EnsembleSramYield/"
    if name.startswith(prefix):
        tail = name[len(prefix):].split("/")[0]  # strip /real_time
        if tail.isdigit():
            ens[int(tail)] = b
if ens:
    summary["ensemble_sram_yield"] = {
        str(n): {
            "trials_per_s": b["trials_per_s"],
            "yield": b["yield"],
            "failed": b["failed"],
            "retried": b["retried"],
            "recovered": b["recovered"],
            "threads": b["threads"],
            "thread_efficiency": b["thread_efficiency"],
        }
        for n, b in sorted(ens.items())
    }
    n_big = max(ens)
    summary["ensemble_trials_per_s"] = ens[n_big]["trials_per_s"]
    summary["ensemble_thread_efficiency"] = ens[n_big]["thread_efficiency"]

if bench_lib_override:
    summary["benchmark_library_debug_override"] = True

data["summary"] = summary
with open(out_path, "w") as f:
    json.dump(data, f, indent=2)

for k, v in summary.items():
    if isinstance(v, dict):
        print(f"{k}:")
        for kk, vv in v.items():
            if isinstance(vv, dict):
                inner = ", ".join(f"{a}={b:.4g}" for a, b in vv.items())
                print(f"  {kk}: {inner}")
            else:
                print(f"  {kk}: {vv}")
    elif isinstance(v, float):
        print(f"{k}: {v:.4g}")
    else:
        print(f"{k}: {v}")
print(f"wrote {out_path}")
EOF
