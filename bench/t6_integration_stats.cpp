// Experiment T6 — Section V: the hard work of industrial-grade integration.
// (1) Park-style trench self-assembly: statistics over >10,000 blindly
//     fabricated CNTFETs (ref [22]).
// (2) Purification: passes vs purity for gel / gradient / DNA sorting.
// (3) Purity vs circuit-scale yield — why "SWCNT circuits will be an
//     illusional dream" without high-yield wafer-scale integration.
// (4) The one-bit SUBNEG carbon nanotube computer (refs [20, 21]) running
//     its counting program on CNTFET-characterized gates.
#include <iostream>
#include <memory>

#include "core/report.h"
#include "device/cntfet.h"
#include "fab/devstats.h"
#include "fab/placement.h"
#include "fab/sorting.h"
#include "fab/yield.h"
#include "logic/stdcell.h"
#include "logic/subneg.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "T6 / Sec. V",
                     "wafer-scale integration statistics and the CNT "
                     "computer");

  // ---- (1) >10,000-device statistical study ----
  fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  const auto sorted = fab::apply_sorting(fab::gel_chromatography(), 2,
                                         pop.metallic_fraction());
  fab::apply_to_population(fab::gel_chromatography(), 2, pop);
  phys::Rng rng(2014);
  fab::TrenchAssemblyModel trench;
  const auto sites = trench.run(pop, 10609, rng);  // Park: >10,000 FETs
  const auto devices = fab::measure_sites(sites, {}, rng);
  const auto stats = fab::summarize(devices);

  phys::DataTable park({"devices", "yield_pct", "median_onoff",
                        "median_ion_ua", "mean_tubes", "short_pct"});
  park.add_row({static_cast<double>(stats.devices), stats.yield * 100.0,
                stats.median_on_off, stats.median_ion_a * 1e6,
                stats.mean_tubes, stats.short_fraction * 100.0});
  core::emit_table(std::cout, park, "Park-style >10k device study",
                   "t6_park_stats.csv");
  core::emit_table(std::cout, fab::on_off_histogram(devices),
                   "on/off distribution", "t6_onoff_hist.csv");

  // ---- (2) sorting-process comparison ----
  phys::DataTable sort_t({"process_idx", "passes_to_1ppm", "mass_yield_pct"});
  int idx = 0;
  for (const auto& proc : {fab::gel_chromatography(), fab::density_gradient(),
                           fab::dna_sorting()}) {
    const auto r = fab::passes_for_purity(proc, 1.0);
    sort_t.add_row({static_cast<double>(idx++),
                    static_cast<double>(r.passes),
                    r.overall_mass_yield * 100.0});
  }
  core::emit_table(std::cout, sort_t,
                   "passes to 1 ppm metallic (0: gel, 1: gradient, 2: DNA)",
                   "t6_sorting.csv");

  // ---- (3) purity requirement vs circuit scale ----
  const auto purity = fab::purity_requirement_table(
      {178, 10000, 1000000, 100000000, 10000000000LL}, 3, 4, 0.5);
  core::emit_table(std::cout, purity,
                   "metallic tolerance for 50% circuit yield "
                   "(3 tubes/FET, 4 FETs/gate)",
                   "t6_purity_requirement.csv");

  // ---- (4) the one-bit computer ----
  auto cnt = std::make_shared<device::CntfetModel>(
      device::make_franklin_cntfet_params(20e-9));
  logic::CharacterizationOptions copt;
  copt.v_dd = 0.5;
  copt.c_load_f = 0.05e-15;
  const logic::CellTiming timing = logic::characterize_cells(cnt, copt);

  logic::SubnegMachine machine(16);
  machine.load(logic::make_counting_program(0, 1, 10));
  const int steps = machine.run();

  logic::SubnegDatapath dp(8, timing);
  bool neg = false;
  dp.subtract(7, 3, &neg);

  phys::DataTable comp({"inv_delay_ps", "energy_fj", "datapath_gates",
                        "cycle_time_ns", "program_steps", "count_result"});
  comp.add_row({timing.t_inv_s * 1e12,
                timing.energy_per_transition_j * 1e15,
                static_cast<double>(dp.num_gates()),
                dp.last_settle_time_s() * 1e9,
                static_cast<double>(steps),
                static_cast<double>(machine.read(0))});
  core::emit_table(std::cout, comp, "SUBNEG CNT computer", "t6_computer.csv");

  const int misses = core::print_claims(
      std::cout,
      {{"t6.devices", "devices measured (>10,000)", 10000,
        static_cast<double>(stats.devices), "", 0.2},
       {"t6.metallic", "post-sort metallic content", sorted.metallic_ppm,
        pop.metallic_fraction() * 1e6, "ppm", 0.5},
       {"t6.count", "counting program result", 10.0,
        static_cast<double>(machine.read(0)), "", 1e-9},
       {"t6.yield", "device yield in the statistical study", 0.8,
        stats.yield, "", 0.3}});
  return misses == 0 ? 0 : 1;
}
