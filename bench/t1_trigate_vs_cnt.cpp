// Experiment T1 — Section III.E text claims.
// Intel 30 nm trigate (fin 35 nm tall, 18 nm wide): ~66 uA at 1 V / 1 V.
// Franklin wrap-gate CNTFET (d ~ 1 nm class, Lg = 30 nm): ~20 uA already
// at VDS = 0.6 V — about 1/3 the trigate current from a channel whose
// cross-section is more than 300x smaller.
#include <cmath>
#include <iostream>

#include "core/report.h"
#include "device/cntfet.h"
#include "device/mosfet.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "T1 / Sec. III.E",
                     "trigate fin vs single-tube CNTFET drive currents");

  const device::VirtualSourceModel trigate(
      device::make_si_trigate_params(30e-9));
  const device::CntfetModel cnt(device::make_franklin_cntfet_params(30e-9));

  const double i_trigate = trigate.drain_current(1.0, 1.0);
  const double i_cnt = cnt.drain_current(0.6, 0.6);

  // Cross sections: fin 35 nm x 18 nm vs tube pi/4 d^2.
  const double a_fin = 35e-9 * 18e-9;
  const double d = cnt.diameter();
  const double a_tube = M_PI / 4.0 * d * d;

  phys::DataTable t({"quantity", "trigate", "cntfet"});
  t.add_row({0, i_trigate * 1e6, i_cnt * 1e6});        // row 0: current uA
  t.add_row({1, a_fin * 1e18, a_tube * 1e18});         // row 1: area nm^2
  core::emit_table(std::cout, t,
                   "row 0: drive current [uA] (trigate @1V/1V, CNT @0.6V); "
                   "row 1: cross-section [nm^2]",
                   "t1_trigate_vs_cnt.csv");

  std::cout << "\ncurrent ratio CNT/trigate = " << i_cnt / i_trigate
            << " (paper: ~1/3)\n"
            << "cross-section ratio trigate/CNT = " << a_fin / a_tube
            << " (paper: >300)\n";

  const int misses = core::print_claims(
      std::cout,
      {{"t1.trigate", "trigate current @ 1V/1V", 66e-6, i_trigate, "A", 0.25},
       {"t1.cnt", "CNTFET current @ 0.6V", 20e-6, i_cnt, "A", 0.35},
       {"t1.third", "CNT/trigate current ratio", 1.0 / 3.0,
        i_cnt / i_trigate, "", 0.5},
       {"t1.area", "cross-section ratio", 300.0, a_fin / a_tube, "x", 0.6}});
  return misses == 0 ? 0 : 1;
}
