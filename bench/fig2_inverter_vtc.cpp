// Experiment E2 — Fig. 2 of Kreupl, DATE 2014.
// SPICE comparison of two inverters at VDD = 1 V with a 10 fF load:
// (a) output family of the saturating FET, (b) of the linear FET,
// (c) VTC of the saturating pair (NM ~ 0.4 V per side, gain >> 1),
// (d) VTC of the non-saturating pair (gain never exceeds 1, NM ~ 0).
#include <iostream>
#include <memory>

#include "circuit/cells.h"
#include "circuit/vtc.h"
#include "core/report.h"
#include "device/alpha_power.h"
#include "device/linear_fet.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "E2 / Fig. 2",
                     "inverter VTCs: saturating vs non-saturating FETs "
                     "(VDD = 1 V, CL = 10 fF)");

  auto sat = std::make_shared<device::AlphaPowerModel>(
      device::make_fig2_saturating_params());
  auto lin = std::make_shared<device::LinearFetModel>(
      device::make_fig2_linear_params());

  // ---- Fig. 2(a)/(b): device output families ----
  const std::vector<double> gates{0.2, 0.4, 0.6, 0.8, 1.0};
  core::emit_table(std::cout,
                   device::output_family(*sat, 0.0, 1.0, 21, gates),
                   "Fig. 2(a): saturating FET output family",
                   "fig2a_sat_family.csv");
  core::emit_table(std::cout,
                   device::output_family(*lin, 0.0, 1.0, 21, gates),
                   "Fig. 2(b): linear FET output family",
                   "fig2b_lin_family.csv");

  // ---- Fig. 2(c)/(d): inverter VTCs ----
  circuit::CellOptions opt;
  opt.v_dd = 1.0;
  opt.c_load = 10e-15;

  auto bench_sat = circuit::make_inverter(sat, opt);
  auto bench_lin = circuit::make_inverter(lin, opt);
  const auto vtc_sat = circuit::run_vtc(bench_sat, 101);
  const auto vtc_lin = circuit::run_vtc(bench_lin, 101);
  core::emit_table(std::cout, vtc_sat, "Fig. 2(c): VTC, saturating pair",
                   "fig2c_vtc_sat.csv");
  core::emit_table(std::cout, vtc_lin, "Fig. 2(d): VTC, linear pair",
                   "fig2d_vtc_lin.csv");

  const auto m_sat =
      spice::analyze_vtc(vtc_sat, "sweep_v", "v(out)", opt.v_dd);
  const auto m_lin =
      spice::analyze_vtc(vtc_lin, "sweep_v", "v(out)", opt.v_dd);

  std::cout << "\nsaturating pair: VM=" << m_sat.v_switch
            << " V  max|gain|=" << m_sat.max_abs_gain
            << "  VIL=" << m_sat.v_il << "  VIH=" << m_sat.v_ih
            << "  NML=" << m_sat.nm_low << "  NMH=" << m_sat.nm_high << "\n";
  std::cout << "linear pair:     VM=" << m_lin.v_switch
            << " V  max|gain|=" << m_lin.max_abs_gain
            << "  NML=" << m_lin.nm_low << "  NMH=" << m_lin.nm_high << "\n";

  const int misses = core::print_claims(
      std::cout,
      {{"fig2.nmh_sat", "saturating inverter NMH", 0.4, m_sat.nm_high, "V",
        0.5},
       {"fig2.nml_sat", "saturating inverter NML", 0.4, m_sat.nm_low, "V",
        0.5},
       {"fig2.gain_sat", "saturating inverter gain >> 1", 10.0,
        m_sat.max_abs_gain, "", 2.0},
       {"fig2.gain_lin", "linear inverter max gain (never exceeds 1)", 1.0,
        m_lin.max_abs_gain, "", 0.10},
       {"fig2.nm_lin", "linear inverter noise margin (~0)", 0.0,
        m_lin.nm_low + m_lin.nm_high, "V", 1e-6}});
  return misses == 0 ? 0 : 1;
}
