// Ablation A4 — the paper's thesis sentence: CNT-FETs "will enable further
// voltage and gate length scaling."  Constant-field supply scaling of the
// CNTFET vs the Si trigate: on/off ratio, CV/I delay and mid-rail gain.
#include <iostream>

#include "core/report.h"
#include "core/scaling.h"
#include "device/cntfet.h"
#include "device/mosfet.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "A4 / thesis",
                     "supply-voltage scaling: CNTFET vs Si trigate");

  const device::CntfetModel cnt(device::make_franklin_cntfet_params(20e-9));
  const device::VirtualSourceModel si(device::make_si_trigate_params(30e-9));

  core::ScalingOptions opt;
  opt.vdd_max = 1.0;
  opt.vdd_min = 0.25;
  opt.steps = 7;
  opt.c_load_f = 1e-15;

  const auto t_cnt = core::supply_scaling_table(cnt, opt);
  const auto t_si = core::supply_scaling_table(si, opt);
  core::emit_table(std::cout, t_cnt, "CNTFET vs VDD", "a4_cnt_scaling.csv");
  core::emit_table(std::cout, t_si, "Si trigate vs VDD", "a4_si_scaling.csv");

  // At VDD = 0.5 V (row index 4 of 7: 1.0 -> 0.25 in steps of 0.125).
  const int r05 = 4;
  const int onoff = t_cnt.column_index("on_off_ratio");
  const double cnt_onoff = t_cnt.at(r05, onoff);
  const double si_onoff = t_si.at(r05, onoff);
  const double vdd_at_row = t_cnt.at(r05, 0);

  std::cout << "\nat VDD = " << vdd_at_row
            << " V: on/off CNT = " << cnt_onoff << ", Si = " << si_onoff
            << "\n";

  const int misses = core::print_claims(
      std::cout,
      {{"a4.cnt_onoff", "CNT on/off at half-volt supply", 1e5, cnt_onoff,
        "", 0.5, core::ClaimKind::kAtLeast},
       {"a4.advantage", "CNT/Si on-off advantage at 0.5 V", 3.0,
        cnt_onoff / si_onoff, "x", 0.5, core::ClaimKind::kAtLeast}});
  return misses == 0 ? 0 : 1;
}
