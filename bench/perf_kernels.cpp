// P1 — google-benchmark microbenchmarks of the numerical kernels: device
// model evaluation throughput, barrier self-consistency, SPICE solves and
// the logic simulator.  These bound how large a study the library can run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "circuit/cells.h"
#include "circuit/sram.h"
#include "circuit/vtc.h"
#include "spice/ac.h"
#include "spice/smallsignal.h"
#include "device/alpha_power.h"
#include "device/cntfet.h"
#include "device/faulty.h"
#include "device/mosfet.h"
#include "device/tabulated.h"
#include "device/tfet.h"
#include "fab/devstats.h"
#include "fab/placement.h"
#include "logic/subneg.h"
#include "phys/parallel.h"
#include "spice/analyses.h"
#include "spice/ensemble.h"
#include "spice/measure.h"

namespace {

using namespace carbon;

void BM_CntfetEval(benchmark::State& state) {
  const device::CntfetModel m(device::make_franklin_cntfet_params(20e-9));
  double vg = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.drain_current(vg, 0.5));
    vg = (vg < 0.7) ? vg + 1e-4 : 0.3;  // defeat any caching
  }
}
BENCHMARK(BM_CntfetEval);

void BM_CntfetEvalWithSeriesR(benchmark::State& state) {
  device::CntfetParams p = device::make_franklin_cntfet_params(20e-9);
  p.r_source_ohm = p.r_drain_ohm = 5.5e3;
  const device::CntfetModel m(p);
  double vg = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.drain_current(vg, 0.5));
    vg = (vg < 0.7) ? vg + 1e-4 : 0.3;
  }
}
BENCHMARK(BM_CntfetEvalWithSeriesR);

void BM_VirtualSourceEval(benchmark::State& state) {
  const device::VirtualSourceModel m(device::make_si_trigate_params());
  double vg = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.drain_current(vg, 0.5));
    vg = (vg < 0.9) ? vg + 1e-4 : 0.3;
  }
}
BENCHMARK(BM_VirtualSourceEval);

void BM_TfetEval(benchmark::State& state) {
  const device::CntTfetModel m(device::make_fig6_tfet_params());
  double vg = -0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.drain_current(vg, -0.5));
    vg = (vg > -2.0) ? vg - 1e-4 : -0.2;
  }
}
BENCHMARK(BM_TfetEval);

void BM_CntfetConstruction(benchmark::State& state) {
  for (auto _ : state) {
    device::CntfetModel m(device::make_franklin_cntfet_params(20e-9));
    benchmark::DoNotOptimize(m.drain_current(0.5, 0.5));
  }
}
BENCHMARK(BM_CntfetConstruction);

void BM_SpiceInverterOp(benchmark::State& state) {
  auto n = std::make_shared<device::VirtualSourceModel>(
      device::make_si_trigate_params());
  auto bench = circuit::make_inverter(n);
  bench.vin->set_wave(spice::dc(0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::operating_point(*bench.ckt));
  }
}
BENCHMARK(BM_SpiceInverterOp);

void BM_SpiceVtcSweep(benchmark::State& state) {
  auto n = std::make_shared<device::VirtualSourceModel>(
      device::make_si_trigate_params());
  auto bench = circuit::make_inverter(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::run_vtc(bench, 41));
  }
}
BENCHMARK(BM_SpiceVtcSweep);

// ---- the tabulated fast path vs the direct self-consistent models ----

device::CntfetParams vtc_cntfet_params() {
  device::CntfetParams p = device::make_franklin_cntfet_params(20e-9);
  p.ef_source_ev = -0.18;  // digital-threshold retarget for a 0.6 V cell
  return p;
}

void BM_TabulatedCntfetEval(benchmark::State& state) {
  auto exact = std::make_shared<device::CntfetModel>(vtc_cntfet_params());
  const device::DeviceModelPtr tab = device::make_tabulated(exact, 0.6);
  double vg = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tab->eval(vg, 0.5));
    vg = (vg < 0.6) ? vg + 1e-4 : 0.1;  // defeat any caching
  }
}
BENCHMARK(BM_TabulatedCntfetEval);

/// Seed path: the exact CNTFET inside the Newton loop (every stamp pays
/// nested bracket+Brent barrier solves through the FD fallback).
void BM_SpiceVtcSweepCntfetDirect(benchmark::State& state) {
  auto exact = std::make_shared<device::CntfetModel>(vtc_cntfet_params());
  circuit::CellOptions opt;
  opt.v_dd = 0.6;
  auto bench = circuit::make_inverter(exact, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::run_vtc(bench, 41));
  }
}
BENCHMARK(BM_SpiceVtcSweepCntfetDirect);

/// Fast path: same sweep on the table-compiled CNTFET with the persistent
/// Newton workspace and point-to-point warm starts.
void BM_SpiceVtcSweepWarmStart(benchmark::State& state) {
  auto exact = std::make_shared<device::CntfetModel>(vtc_cntfet_params());
  const device::DeviceModelPtr tab = device::make_tabulated(exact, 0.6);
  circuit::CellOptions opt;
  opt.v_dd = 0.6;
  auto bench = circuit::make_inverter(tab, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::run_vtc(bench, 41));
  }
}
BENCHMARK(BM_SpiceVtcSweepWarmStart);

// ---- Newton-solve scaling: dense LU vs sparse symbolic-reuse LU ----
//
// The workload is a diode-loaded resistor ladder (make_diode_ladder): a
// nonlinear circuit whose Jacobian has the tridiagonal-plus-diagonal
// pattern typical of device arrays.  Each benchmark iteration runs a full
// cold-start operating point on a persistent workspace, so the sparse
// backend pays its symbolic analysis once on the first iteration and pure
// numeric refactorization afterwards — exactly the sweep/transient duty
// cycle.  state.range(0) is the MNA unknown count.

void newton_scaling_bench(benchmark::State& state, spice::LinearBackend be) {
  const int unknowns = static_cast<int>(state.range(0));
  auto bench = circuit::make_diode_ladder(unknowns - 2, 100.0, 1e-14, 1.0);
  spice::SolverOptions opts;
  opts.backend = be;
  spice::NewtonWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spice::operating_point(*bench.ckt, opts, nullptr, &ws));
  }
  state.SetComplexityN(unknowns);
}

void BM_NewtonSolveDense(benchmark::State& state) {
  newton_scaling_bench(state, spice::LinearBackend::kDense);
}
BENCHMARK(BM_NewtonSolveDense)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void BM_NewtonSolveSparse(benchmark::State& state) {
  newton_scaling_bench(state, spice::LinearBackend::kSparse);
}
BENCHMARK(BM_NewtonSolveSparse)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond)->Complexity();

/// A 2-D FET mesh stresses the ordering with a less regular pattern: a
/// grid of common-source stages whose gates tap the previous row.
void BM_NewtonSolveSparseFetGrid(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  auto model = std::make_shared<device::AlphaPowerModel>(
      device::make_fig2_saturating_params());
  spice::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  ckt.add_vsource("vg", "g0x0", "0", 0.45);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      const std::string drain =
          "d" + std::to_string(r) + "x" + std::to_string(c);
      const std::string gate =
          r == 0 ? (c == 0 ? "g0x0" : "d0x" + std::to_string(c - 1))
                 : "d" + std::to_string(r - 1) + "x" + std::to_string(c);
      ckt.add_resistor("r" + drain, "vdd", drain, 5e3);
      ckt.add_fet("m" + drain, drain, gate, "0", model);
    }
  }
  spice::SolverOptions opts;
  opts.backend = spice::LinearBackend::kSparse;
  spice::NewtonWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::operating_point(ckt, opts, nullptr, &ws));
  }
}
BENCHMARK(BM_NewtonSolveSparseFetGrid)
    ->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

// ---- adaptive transient engine: fixed-step vs LTE-controlled stepping ----
//
// Two paper workloads, each as a fixed/adaptive pair on identical circuits
// and probe grids (dt_print) so the waveforms are directly comparable:
//  * a 5-stage CNTFET ring oscillator (free-running; the headline dynamic
//    demonstration of the paper), and
//  * a 6T SRAM write (driven; long quiescent hold intervals around a
//    wordline pulse — the adaptive engine's best case).
// Each benchmark also reports accuracy against a 4x-finer fixed-step
// reference computed once outside the timing loop: voltage RMS on the
// common dt_print grid, and (ring) the oscillation-period error.  For the
// driven SRAM deck the adaptive RMS criterion is absolute (<= 1e-4 V); for
// the free-running ring, pointwise RMS is phase-drift dominated for every
// integrator, so matched accuracy means beating the fixed baseline's RMS
// and period error, which the CI smoke job asserts.

spice::TransientOptions adaptive_pair_options(bool adaptive, double t_stop,
                                              double dt, double dt_print) {
  spice::TransientOptions o;
  o.t_stop = t_stop;
  o.dt = dt;
  o.dt_print = dt_print;
  o.adaptive = adaptive;
  o.lte_reltol = 1e-4;
  o.bypass_vtol = adaptive ? 1e-4 : 0.0;
  o.ic = spice::TransientIc::kFromOperatingPoint;
  return o;
}

phys::DataTable run_ring_tran(const device::DeviceModelPtr& model,
                              const spice::TransientOptions& opts) {
  circuit::CellOptions copt;
  copt.v_dd = 0.6;
  copt.c_load = 5e-15;
  auto bench = circuit::make_ring_oscillator(model, 5, copt);
  return spice::transient(*bench.ckt, opts, {"n0"});
}

phys::DataTable run_sram_write_tran(const device::DeviceModelPtr& model,
                                    const spice::TransientOptions& opts) {
  circuit::CellOptions copt;
  copt.v_dd = 0.6;
  auto bench = circuit::make_sram_write_bench(model, copt);
  return spice::transient(*bench.ckt, opts, {"q", "qb"});
}

double waveform_rms(const phys::DataTable& a, const phys::DataTable& b,
                    int col) {
  const int n = std::min(a.num_rows(), b.num_rows());
  double s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = a.at(i, col) - b.at(i, col);
    s2 += d * d;
  }
  return std::sqrt(s2 / n);
}

constexpr double kRingTStop = 10e-9, kRingDt = 2e-12, kRingPrint = 10e-12;
constexpr double kSramTStop = 4e-9, kSramDt = 1e-12, kSramPrint = 4e-12;

/// 4x-finer fixed-step reference waveforms, computed once and shared by
/// the fixed and adaptive benchmark bodies.
const phys::DataTable& ring_reference(const device::DeviceModelPtr& model) {
  static const phys::DataTable ref = run_ring_tran(
      model,
      adaptive_pair_options(false, kRingTStop, kRingDt / 4.0, kRingPrint));
  return ref;
}

const phys::DataTable& sram_reference(const device::DeviceModelPtr& model) {
  static const phys::DataTable ref = run_sram_write_tran(
      model,
      adaptive_pair_options(false, kSramTStop, kSramDt / 4.0, kSramPrint));
  return ref;
}

void transient_ring_bench(benchmark::State& state, bool adaptive) {
  static const device::DeviceModelPtr tab = [] {
    auto exact = std::make_shared<device::CntfetModel>(vtc_cntfet_params());
    return device::make_tabulated(exact, 0.6);
  }();
  const spice::TransientOptions base =
      adaptive_pair_options(adaptive, kRingTStop, kRingDt, kRingPrint);

  spice::TransientStats stats;
  phys::DataTable tr;
  for (auto _ : state) {
    spice::TransientOptions opts = base;
    opts.stats = &stats;
    tr = run_ring_tran(tab, opts);
    benchmark::DoNotOptimize(tr);
  }

  const phys::DataTable& ref = ring_reference(tab);
  const double v_mid = 0.3;
  const double p_ref = spice::oscillation_period(ref, "v(n0)", v_mid, 0);
  const double p_run = spice::oscillation_period(tr, "v(n0)", v_mid, 0);
  state.counters["newton_iters"] = static_cast<double>(stats.newton_iterations);
  state.counters["device_evals"] = static_cast<double>(stats.evals.device_evals);
  state.counters["device_bypasses"] =
      static_cast<double>(stats.evals.device_bypasses);
  state.counters["steps"] = static_cast<double>(stats.steps_accepted);
  state.counters["rms_v_vs_ref"] = waveform_rms(ref, tr, 1);
  state.counters["period_relerr"] = std::abs(p_run - p_ref) / p_ref;
}

void BM_TransientRingOscFixed(benchmark::State& state) {
  transient_ring_bench(state, false);
}
BENCHMARK(BM_TransientRingOscFixed)->Unit(benchmark::kMillisecond);

void BM_TransientRingOscAdaptive(benchmark::State& state) {
  transient_ring_bench(state, true);
}
BENCHMARK(BM_TransientRingOscAdaptive)->Unit(benchmark::kMillisecond);

void transient_sram_bench(benchmark::State& state, bool adaptive) {
  static const device::DeviceModelPtr tab = [] {
    auto exact = std::make_shared<device::CntfetModel>(vtc_cntfet_params());
    return device::make_tabulated(exact, 0.6);
  }();
  const spice::TransientOptions base =
      adaptive_pair_options(adaptive, kSramTStop, kSramDt, kSramPrint);

  spice::TransientStats stats;
  phys::DataTable tr;
  for (auto _ : state) {
    spice::TransientOptions opts = base;
    opts.stats = &stats;
    tr = run_sram_write_tran(tab, opts);
    benchmark::DoNotOptimize(tr);
  }

  const phys::DataTable& ref = sram_reference(tab);
  state.counters["newton_iters"] = static_cast<double>(stats.newton_iterations);
  state.counters["device_evals"] = static_cast<double>(stats.evals.device_evals);
  state.counters["device_bypasses"] =
      static_cast<double>(stats.evals.device_bypasses);
  state.counters["steps"] = static_cast<double>(stats.steps_accepted);
  state.counters["rms_v_vs_ref"] =
      std::max(waveform_rms(ref, tr, 1), waveform_rms(ref, tr, 2));
}

void BM_TransientSramWriteFixed(benchmark::State& state) {
  transient_sram_bench(state, false);
}
BENCHMARK(BM_TransientSramWriteFixed)->Unit(benchmark::kMillisecond);

void BM_TransientSramWriteAdaptive(benchmark::State& state) {
  transient_sram_bench(state, true);
}
BENCHMARK(BM_TransientSramWriteAdaptive)->Unit(benchmark::kMillisecond);

// ---- small-signal AC scaling: dense complex LU vs the sparse-complex
// engine with one symbolic analysis amortized across the whole sweep ----
//
// Workload: an RC-ladder AC sweep (7 log-spaced points over 3 decades) at
// state.range(0) MNA unknowns.  The dense path factors an n x n complex
// matrix from scratch at every frequency; the sparse path memcpy-restores
// the captured G image, rescales the jωC slots and numerically refactors
// on the pattern analyzed once per sweep.  The CI smoke job asserts
// sparse >= 10x dense at 1024 unknowns.

void ac_scaling_bench(benchmark::State& state, spice::LinearBackend be) {
  const int unknowns = static_cast<int>(state.range(0));
  auto bench = circuit::make_rc_ladder(unknowns - 2, 1e3, 1e-15, 1.0);
  spice::AcOptions opt;
  opt.f_start_hz = 1e6;
  opt.f_stop_hz = 1e9;
  opt.points_per_decade = 2;  // 7 points: a realistic pole-hunt sweep
  opt.dc.backend = be;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spice::ac_sweep(*bench.ckt, *bench.vin, {bench.out_node}, opt));
  }
  state.SetComplexityN(unknowns);
}

void BM_AcSweepDense(benchmark::State& state) {
  ac_scaling_bench(state, spice::LinearBackend::kDense);
}
BENCHMARK(BM_AcSweepDense)
    ->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void BM_AcSweepSparse(benchmark::State& state) {
  ac_scaling_bench(state, spice::LinearBackend::kSparse);
}
BENCHMARK(BM_AcSweepSparse)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond)->Complexity();

// ---- large-array transients: O(N) end-to-end scaling guard ----
//
// A 51- vs 501-stage ring oscillator and an SRAM column array, all through
// the adaptive engine with the quiescent-device bypass, the PI step
// controller and the sparse backend.  Per-stage cost must stay ~flat from
// 51 to 501 stages (the run_bench.sh summary records the ratio and the CI
// smoke job gates on it): a superlinear solve path, a lost pattern reuse
// or an accidental dense fallback shows up as a blown ratio.

void BM_TransientRingScaleAdaptive(benchmark::State& state) {
  static const device::DeviceModelPtr tab = [] {
    auto exact = std::make_shared<device::CntfetModel>(vtc_cntfet_params());
    return device::make_tabulated(exact, 0.6);
  }();
  const int stages = static_cast<int>(state.range(0));
  circuit::CellOptions copt;
  copt.v_dd = 0.6;
  copt.c_load = 5e-15;
  auto bench = circuit::make_ring_oscillator(tab, stages, copt);
  // Cold start: the t = 0 operating point is the powered-up metastable
  // ring OP, solved by the convergence ladder directly (historically this
  // needed a VDD power-up ramp; the op_stage counter below records which
  // ladder stage cracked it — 0 = plain Newton).

  spice::TransientOptions opts;
  opts.t_stop = 1e-9;  // fixed simulated time: cost should scale ~O(N)
  opts.dt = 2e-12;
  opts.adaptive = true;
  opts.lte_reltol = 1e-4;
  opts.lte_pi = true;
  opts.bypass_vtol = 1e-4;
  spice::TransientStats stats;
  opts.stats = &stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::transient(*bench.ckt, opts, {"n0"}));
  }
  state.counters["steps"] = static_cast<double>(stats.steps_accepted);
  state.counters["newton_iters"] =
      static_cast<double>(stats.newton_iterations);
  state.counters["jacobian_reuses"] =
      static_cast<double>(stats.jacobian_reuses);
  // Cold-OP accounting: which ladder stage solved the t = 0 ring OP and
  // whether any fallback fired.  A nonzero op_fallbacks on this deck is a
  // convergence regression (tests/test_convergence.cpp gates the same
  // property; the counter makes it visible in bench trends too).
  state.counters["op_stage"] = static_cast<double>(stats.op.stage);
  state.counters["op_fallbacks"] =
      static_cast<double>((stats.op.used_gmin_stepping ? 1 : 0) +
                          (stats.op.used_source_stepping ? 1 : 0) +
                          (stats.op.used_pseudo_transient ? 1 : 0));
  state.SetComplexityN(stages);
}
BENCHMARK(BM_TransientRingScaleAdaptive)
    ->Arg(51)->Arg(501)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_TransientSramColumnAdaptive(benchmark::State& state) {
  static const device::DeviceModelPtr tab = [] {
    auto exact = std::make_shared<device::CntfetModel>(vtc_cntfet_params());
    return device::make_tabulated(exact, 0.6);
  }();
  const int cells = static_cast<int>(state.range(0));
  circuit::CellOptions copt;
  copt.v_dd = 0.6;
  auto bench = circuit::make_sram_column_bench(tab, cells, copt);

  spice::TransientOptions opts;
  opts.t_stop = 4e-9;
  opts.dt = 1e-12;
  opts.adaptive = true;
  opts.lte_reltol = 1e-4;
  opts.lte_pi = true;
  opts.bypass_vtol = 1e-4;
  opts.dt_print = 8e-12;
  opts.ic = spice::TransientIc::kFromOperatingPoint;
  spice::TransientStats stats;
  opts.stats = &stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spice::transient(*bench.ckt, opts, {"q0", "qb0"}));
  }
  state.counters["newton_iters"] =
      static_cast<double>(stats.newton_iterations);
  state.counters["jacobian_reuses"] =
      static_cast<double>(stats.jacobian_reuses);
  state.SetComplexityN(cells);
}
BENCHMARK(BM_TransientSramColumnAdaptive)
    ->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

// ---- fault-tolerant ensemble engine: SRAM write yield under variation ----
//
// The production Monte-Carlo workload: N write trials of the 6T cell, each
// with its transistors re-targeted to a fab-perturbed alpha-power model
// (fab::perturb_alpha_power from the trial's own RNG stream), sharded over
// the pool with one bench + Newton workspace per worker.  5% of trials
// carry an injected mid-transient NaN fault; the batch must absorb them as
// structured failure records at full throughput.  Counters record yield,
// the failure/retry accounting, trials/s and the thread-scaling efficiency
// against a measured serial reference (run_bench.sh publishes them).

void BM_EnsembleSramYield(benchmark::State& state) {
  const long trials = state.range(0);
  static const device::AlphaPowerParams nominal =
      device::make_fig2_saturating_params();

  spice::EnsembleOptions eo;
  eo.seed = 2014;
  eo.max_retries = 1;

  const auto factory = [](int) -> spice::EnsembleRunner::TrialFn {
    struct Worker {
      circuit::SramWriteBench bench;
      spice::NewtonWorkspace ws;
      std::vector<spice::Fet*> nfets, pfets;
    };
    auto w = std::make_shared<Worker>();
    w->bench = circuit::make_sram_write_bench(
        std::make_shared<device::AlphaPowerModel>(nominal));
    for (const auto& el : w->bench.ckt->elements()) {
      if (auto* f = dynamic_cast<spice::Fet*>(el.get())) {
        (f->model().polarity() == device::Polarity::kPType ? w->pfets
                                                           : w->nfets)
            .push_back(f);
      }
    }
    return [w](spice::TrialContext& tctx) -> spice::TrialMeasurement {
      fab::DeviceVariation var;
      const auto p = fab::perturb_alpha_power(nominal, var, tctx.rng);
      device::DeviceModelPtr nm = std::make_shared<device::AlphaPowerModel>(p);
      if (tctx.index % 20 == 7) {  // 5% fault-injected trials
        device::FaultSpec s;
        s.kind = device::FaultKind::kNanEval;
        s.trigger_evals = 400;  // arms mid-transient, past the t=0 OP
        nm = device::with_fault(nm, s);
      }
      for (auto* f : w->nfets) f->set_model(nm);
      const auto pm = std::make_shared<device::PTypeMirror>(nm);
      for (auto* f : w->pfets) f->set_model(pm);
      w->bench.ckt->reset_state();

      spice::TransientOptions base;
      base.t_stop = 4e-9;
      base.dt = 1e-12;
      base.adaptive = true;
      base.lte_reltol = 1e-3;
      base.dt_print = 20e-12;
      base.ic = spice::TransientIc::kFromOperatingPoint;
      base.workspace = &w->ws;
      spice::TransientOptions opt = tctx.tuned(base);
      spice::TrialMeasurement m;
      opt.stats = &m.stats;
      const auto tr = spice::transient(*w->bench.ckt, opt, {"q", "qb"});
      const double q_end = tr.at(tr.num_rows() - 1, 1);
      m.metric = q_end;
      m.pass = q_end < 0.1 && tr.at(tr.num_rows() - 1, 2) > 0.5;
      return m;
    };
  };

  // One-time serial reference (8 trials on 1 thread) for the
  // thread-scaling efficiency counter.
  static const double serial_s_per_trial = [&] {
    spice::EnsembleOptions serial = eo;
    serial.num_threads = 1;
    const auto r = spice::EnsembleRunner(serial).run(8, factory);
    return r.summary.wall_s / 8.0;
  }();

  spice::EnsembleSummary last;
  for (auto _ : state) {
    const auto res = spice::EnsembleRunner(eo).run(trials, factory);
    last = res.summary;
    benchmark::DoNotOptimize(&last);
  }
  state.counters["trials_per_s"] = trials / last.wall_s;
  state.counters["yield"] = last.yield;
  state.counters["failed"] = static_cast<double>(last.failed);
  state.counters["retried"] = static_cast<double>(last.retried_trials);
  state.counters["recovered"] = static_cast<double>(last.recovered_by_retry);
  state.counters["threads"] = static_cast<double>(last.threads);
  state.counters["thread_efficiency"] =
      (serial_s_per_trial * static_cast<double>(trials)) /
      (last.threads * last.wall_s);
}
BENCHMARK(BM_EnsembleSramYield)
    ->Arg(64)->Arg(256)->Arg(1000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PlacementMonteCarlo(benchmark::State& state) {
  const fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  fab::TrenchAssemblyModel model;
  phys::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.run(pop, 1000, rng));
  }
}
BENCHMARK(BM_PlacementMonteCarlo);

void BM_PlacementMonteCarloParallel(benchmark::State& state) {
  const fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  fab::TrenchAssemblyModel model;
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.run_parallel(pop, 1000, seed++, threads));
  }
}
BENCHMARK(BM_PlacementMonteCarloParallel)
    ->Arg(1)
    ->Arg(0);  // 0 = default pool width (hardware concurrency)

void BM_GateLevelSubtract(benchmark::State& state) {
  logic::CellTiming timing;
  timing.t_inv_s = 1e-12;
  timing.t_nand2_s = 1.5e-12;
  timing.t_nor2_s = 1.7e-12;
  logic::SubnegDatapath dp(16, timing);
  bool neg = false;
  std::uint64_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.subtract(b & 0xFFFF, (b * 7 + 3) & 0xFFFF,
                                         &neg));
    ++b;
  }
}
BENCHMARK(BM_GateLevelSubtract);

void BM_SubnegCountingProgram(benchmark::State& state) {
  for (auto _ : state) {
    logic::SubnegMachine m(16);
    m.load(logic::make_counting_program(0, 1, 50));
    benchmark::DoNotOptimize(m.run());
  }
}
BENCHMARK(BM_SubnegCountingProgram);

}  // namespace

int main(int argc, char** argv) {
  // Recorded into the JSON context so bench/run_bench.sh can refuse to
  // publish numbers from a non-Release build of libcarbon.
#ifdef CARBON_CMAKE_BUILD_TYPE
  benchmark::AddCustomContext("carbon_cmake_build_type",
                              CARBON_CMAKE_BUILD_TYPE);
#endif
  benchmark::AddCustomContext("carbon_build_type",
#ifdef NDEBUG
                              "release"
#else
                              "debug"
#endif
  );
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
