// P1 — google-benchmark microbenchmarks of the numerical kernels: device
// model evaluation throughput, barrier self-consistency, SPICE solves and
// the logic simulator.  These bound how large a study the library can run.
#include <benchmark/benchmark.h>

#include <memory>

#include "circuit/cells.h"
#include "circuit/vtc.h"
#include "device/cntfet.h"
#include "device/mosfet.h"
#include "device/tabulated.h"
#include "device/tfet.h"
#include "fab/devstats.h"
#include "fab/placement.h"
#include "logic/subneg.h"
#include "phys/parallel.h"
#include "spice/analyses.h"

namespace {

using namespace carbon;

void BM_CntfetEval(benchmark::State& state) {
  const device::CntfetModel m(device::make_franklin_cntfet_params(20e-9));
  double vg = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.drain_current(vg, 0.5));
    vg = (vg < 0.7) ? vg + 1e-4 : 0.3;  // defeat any caching
  }
}
BENCHMARK(BM_CntfetEval);

void BM_CntfetEvalWithSeriesR(benchmark::State& state) {
  device::CntfetParams p = device::make_franklin_cntfet_params(20e-9);
  p.r_source_ohm = p.r_drain_ohm = 5.5e3;
  const device::CntfetModel m(p);
  double vg = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.drain_current(vg, 0.5));
    vg = (vg < 0.7) ? vg + 1e-4 : 0.3;
  }
}
BENCHMARK(BM_CntfetEvalWithSeriesR);

void BM_VirtualSourceEval(benchmark::State& state) {
  const device::VirtualSourceModel m(device::make_si_trigate_params());
  double vg = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.drain_current(vg, 0.5));
    vg = (vg < 0.9) ? vg + 1e-4 : 0.3;
  }
}
BENCHMARK(BM_VirtualSourceEval);

void BM_TfetEval(benchmark::State& state) {
  const device::CntTfetModel m(device::make_fig6_tfet_params());
  double vg = -0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.drain_current(vg, -0.5));
    vg = (vg > -2.0) ? vg - 1e-4 : -0.2;
  }
}
BENCHMARK(BM_TfetEval);

void BM_CntfetConstruction(benchmark::State& state) {
  for (auto _ : state) {
    device::CntfetModel m(device::make_franklin_cntfet_params(20e-9));
    benchmark::DoNotOptimize(m.drain_current(0.5, 0.5));
  }
}
BENCHMARK(BM_CntfetConstruction);

void BM_SpiceInverterOp(benchmark::State& state) {
  auto n = std::make_shared<device::VirtualSourceModel>(
      device::make_si_trigate_params());
  auto bench = circuit::make_inverter(n);
  bench.vin->set_wave(spice::dc(0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::operating_point(*bench.ckt));
  }
}
BENCHMARK(BM_SpiceInverterOp);

void BM_SpiceVtcSweep(benchmark::State& state) {
  auto n = std::make_shared<device::VirtualSourceModel>(
      device::make_si_trigate_params());
  auto bench = circuit::make_inverter(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::run_vtc(bench, 41));
  }
}
BENCHMARK(BM_SpiceVtcSweep);

// ---- the tabulated fast path vs the direct self-consistent models ----

device::CntfetParams vtc_cntfet_params() {
  device::CntfetParams p = device::make_franklin_cntfet_params(20e-9);
  p.ef_source_ev = -0.18;  // digital-threshold retarget for a 0.6 V cell
  return p;
}

void BM_TabulatedCntfetEval(benchmark::State& state) {
  auto exact = std::make_shared<device::CntfetModel>(vtc_cntfet_params());
  const device::DeviceModelPtr tab = device::make_tabulated(exact, 0.6);
  double vg = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tab->eval(vg, 0.5));
    vg = (vg < 0.6) ? vg + 1e-4 : 0.1;  // defeat any caching
  }
}
BENCHMARK(BM_TabulatedCntfetEval);

/// Seed path: the exact CNTFET inside the Newton loop (every stamp pays
/// nested bracket+Brent barrier solves through the FD fallback).
void BM_SpiceVtcSweepCntfetDirect(benchmark::State& state) {
  auto exact = std::make_shared<device::CntfetModel>(vtc_cntfet_params());
  circuit::CellOptions opt;
  opt.v_dd = 0.6;
  auto bench = circuit::make_inverter(exact, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::run_vtc(bench, 41));
  }
}
BENCHMARK(BM_SpiceVtcSweepCntfetDirect);

/// Fast path: same sweep on the table-compiled CNTFET with the persistent
/// Newton workspace and point-to-point warm starts.
void BM_SpiceVtcSweepWarmStart(benchmark::State& state) {
  auto exact = std::make_shared<device::CntfetModel>(vtc_cntfet_params());
  const device::DeviceModelPtr tab = device::make_tabulated(exact, 0.6);
  circuit::CellOptions opt;
  opt.v_dd = 0.6;
  auto bench = circuit::make_inverter(tab, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::run_vtc(bench, 41));
  }
}
BENCHMARK(BM_SpiceVtcSweepWarmStart);

void BM_PlacementMonteCarlo(benchmark::State& state) {
  const fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  fab::TrenchAssemblyModel model;
  phys::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.run(pop, 1000, rng));
  }
}
BENCHMARK(BM_PlacementMonteCarlo);

void BM_PlacementMonteCarloParallel(benchmark::State& state) {
  const fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  fab::TrenchAssemblyModel model;
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.run_parallel(pop, 1000, seed++, threads));
  }
}
BENCHMARK(BM_PlacementMonteCarloParallel)
    ->Arg(1)
    ->Arg(0);  // 0 = default pool width (hardware concurrency)

void BM_GateLevelSubtract(benchmark::State& state) {
  logic::CellTiming timing;
  timing.t_inv_s = 1e-12;
  timing.t_nand2_s = 1.5e-12;
  timing.t_nor2_s = 1.7e-12;
  logic::SubnegDatapath dp(16, timing);
  bool neg = false;
  std::uint64_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.subtract(b & 0xFFFF, (b * 7 + 3) & 0xFFFF,
                                         &neg));
    ++b;
  }
}
BENCHMARK(BM_GateLevelSubtract);

void BM_SubnegCountingProgram(benchmark::State& state) {
  for (auto _ : state) {
    logic::SubnegMachine m(16);
    m.load(logic::make_counting_program(0, 1, 50));
    benchmark::DoNotOptimize(m.run());
  }
}
BENCHMARK(BM_SubnegCountingProgram);

}  // namespace

BENCHMARK_MAIN();
