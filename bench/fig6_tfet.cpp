// Experiment E6 — Fig. 6 of Kreupl, DATE 2014.
// Gated PIN CNT tunnel-FET (PEI-doped, Si back gate through 10 nm SiO2):
// reverse-biased diode shows a sharp BTBT turn-on (SS ~ 83 mV/dec average,
// individual segments below 60) with ~1 mA/um on-current; forward-biased
// diode is barely modulated by the gate.
#include <cmath>
#include <iostream>

#include "core/report.h"
#include "device/tfet.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "E6 / Fig. 6",
                     "CNT tunnel-FET: gated PIN diode transfer curves");

  const device::CntTfetModel tfet(device::make_fig6_tfet_params());

  phys::DataTable fig6({"vg_v", "i_reverse_a", "i_forward_a"});
  for (int i = 0; i <= 100; ++i) {
    const double vg = 0.5 - 3.0 * i / 100;  // 0.5 .. -2.5 V back gate
    fig6.add_row({vg, std::abs(tfet.drain_current(vg, -0.5)),
                  std::abs(tfet.drain_current(vg, +0.5))});
  }
  core::emit_table(std::cout, fig6,
                   "Fig. 6(b): |I| vs VG at Vdiode = -0.5 V / +0.5 V",
                   "fig6_tfet.csv");

  // --- SS extraction on the reverse branch ---
  const auto swing = device::measure_tfet_swing(tfet, -0.5, -2.5, 2.0);
  const double vg_on = swing.vg_onset;
  const double ss_avg = swing.ss_avg_mv_dec;
  const double ss_best = swing.ss_best_mv_dec;

  const double i_on = std::abs(tfet.drain_current(-2.0, -0.5));
  const double on_ma_um = i_on / (tfet.width_normalization() * 1e6) * 1e3;
  const double fwd_mod =
      std::abs(tfet.drain_current(-2.0, 0.5) - tfet.drain_current(0.5, 0.5)) /
      tfet.drain_current(0.5, 0.5);

  std::cout << "\nreverse branch: turn-on at VG ~ " << vg_on
            << " V, SS(avg over 0.25 V) = " << ss_avg
            << " mV/dec, best-point SS = " << ss_best << " mV/dec\n"
            << "on-current " << i_on * 1e6 << " uA (" << on_ma_um
            << " mA/um); forward-branch gate modulation "
            << fwd_mod * 100.0 << "%\n";

  const int misses = core::print_claims(
      std::cout,
      {{"fig6.ss", "reverse-branch average SS", 83.0, ss_avg, "mV/dec", 0.35},
       {"fig6.ss_best", "best-point SS (sub-thermal)", 32.0, ss_best,
        "mV/dec", 1.0},
       {"fig6.ion", "on-current density", 1.0, on_ma_um, "mA/um", 1.0},
       {"fig6.fwd", "forward-branch gate modulation (hardly)", 0.15, fwd_mod,
        "", 1.5}});
  return misses == 0 ? 0 : 1;
}
