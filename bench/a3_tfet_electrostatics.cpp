// Ablation A3 — Section IV's outlook: "If the electrostatic design is
// improved by implementing high-k dielectrics and segmented gates, an even
// better result should be obtainable."  Sweep gate efficiency and junction
// screening length and report SS and on-current.
#include <cmath>
#include <iostream>

#include "core/report.h"
#include "device/tfet.h"



int main() {
  using namespace carbon;
  core::print_banner(std::cout, "A3 / Sec. IV",
                     "TFET electrostatics ablation: gate efficiency and "
                     "junction sharpness");

  phys::DataTable t({"gate_efficiency", "tunnel_length_nm", "ss_mv_dec",
                     "ion_ua"});
  for (double gamma : {0.35, 0.55, 0.75, 0.95}) {
    for (double lt_nm : {2.0, 4.2, 6.0}) {
      device::CntTfetParams p = device::make_fig6_tfet_params();
      p.gate_efficiency = gamma;
      p.tunnel_length = lt_nm * 1e-9;
      const device::CntTfetModel m(p);
      const auto r = device::measure_tfet_swing(m);
      t.add_row({gamma, lt_nm, r.ss_avg_mv_dec, r.i_on_a * 1e6});
    }
  }
  core::emit_table(std::cout, t, "TFET design space",
                   "a3_tfet_electrostatics.csv");

  // Claims: the baseline (0.55 / 3.5 nm) reproduces Fig. 6; the improved
  // corner (0.95 / 2 nm) is strictly better on both axes.
  const auto find = [&](double g, double l) {
    for (int r = 0; r < t.num_rows(); ++r) {
      if (std::abs(t.at(r, 0) - g) < 1e-9 && std::abs(t.at(r, 1) - l) < 1e-9) {
        return std::pair{t.at(r, 2), t.at(r, 3)};
      }
    }
    return std::pair{0.0, 0.0};
  };
  const auto [ss_base, ion_base] = find(0.55, 4.2);
  const auto [ss_best, ion_best] = find(0.95, 2.0);

  std::cout << "\nbaseline (back gate): SS = " << ss_base << " mV/dec, Ion = "
            << ion_base << " uA; improved (high-k segmented): SS = "
            << ss_best << " mV/dec, Ion = " << ion_best << " uA\n";

  const int misses = core::print_claims(
      std::cout,
      {{"a3.base_ss", "baseline SS reproduces Fig. 6", 83.0, ss_base,
        "mV/dec", 0.35},
       {"a3.better_ss", "improved stack steepens SS (ratio < 1)", 0.8,
        ss_best / ss_base, "x", 0.1, core::ClaimKind::kAtMost},
       {"a3.better_ion", "improved stack raises Ion", 1.5,
        ion_best / ion_base, "x", 0.2, core::ClaimKind::kAtLeast}});
  return misses == 0 ? 0 : 1;
}
