// Experiment E5 — Fig. 5 of Kreupl, DATE 2014 (after del Alamo, ref [18]).
// On-current vs gate length at VDS = 0.5 V with every technology
// re-targeted to Ioff = 100 nA/um (the 9 nm CNT point at 10x the spec).
// The paper's verdict to reproduce: "Clearly, the CNTFET outperforms the
// alternatives plotted in Fig. 5."
#include <cmath>
#include <iostream>

#include "core/report.h"
#include "core/technology.h"

int main() {
  using namespace carbon;
  core::print_banner(std::cout, "E5 / Fig. 5",
                     "Ion @ Ioff = 100 nA/um, VDS = 0.5 V: CNT vs Si vs "
                     "InAs vs InGaAs");

  const auto techs = core::fig5_technologies();
  const auto table = core::benchmark_table(techs, 0.5, 100e-9);
  core::emit_table(std::cout, table, "Fig. 5: Ion [mA/um] vs Lg [nm]",
                   "fig5_benchmark.csv");

  // Long-format details (shift, SS) per point.
  phys::DataTable detail(
      {"lg_nm", "tech_idx", "ion_ma_um", "gate_shift_v", "ss_mv_dec"});
  const auto pts = core::benchmark_points(techs, 0.5, 100e-9);
  for (size_t t = 0; t < techs.size(); ++t) {
    for (const auto& p : pts) {
      if (p.technology != techs[t].name) continue;
      detail.add_row({p.gate_length_m * 1e9, static_cast<double>(t),
                      p.ion_a_per_um * 1e3, p.gate_shift_v, p.ss_mv_dec});
    }
  }
  core::emit_table(std::cout, detail, "per-point detail", "fig5_detail.csv");

  // Headline comparisons at Lg ~ 30 nm.
  const auto ion_of = [&](const std::string& name, double lg) {
    for (const auto& p : pts) {
      if (p.technology == name && std::abs(p.gate_length_m - lg) < 1e-12) {
        return p.ion_a_per_um * 1e3;  // mA/um
      }
    }
    return -1.0;
  };
  const double cnt30 = ion_of("cntfet", 20e-9);
  const double si30 = ion_of("si-finfet", 30e-9);
  const double inas30 = ion_of("inas-hemt", 30e-9);
  const double cnt9 = ion_of("cntfet-9nm(10x ioff)", 9e-9);

  std::cout << "\nCNT(20nm) " << cnt30 << "  Si(30nm) " << si30
            << "  InAs(30nm) " << inas30 << "  CNT-9nm@10xIoff " << cnt9
            << "  [mA/um]\n";

  const int misses = core::print_claims(
      std::cout,
      {{"fig5.order1", "CNT / InAs on-current ratio > 1", 3.0,
        cnt30 / inas30, "x", 0.9},
       {"fig5.order2", "InAs / Si on-current ratio > 1", 1.6, inas30 / si30,
        "x", 0.8},
       {"fig5.si", "Si trigate Ion @ 0.5 V", 0.35, si30, "mA/um", 0.6},
       {"fig5.inas", "InAs HEMT Ion @ 0.5 V", 0.55, inas30, "mA/um", 0.6},
       {"fig5.cnt9", "9 nm CNTFET Ion (10x Ioff)", 2.4, cnt9, "mA/um",
        1.5}});
  return misses == 0 ? 0 : 1;
}
